package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/rdb"
	"github.com/factordb/fdb/internal/relation"
)

// The exhaustive (Dijkstra) planner must agree with RDB too.
func TestExhaustiveDifferentialProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomChainDB(rng)
		q := randomAggQuery(rng)
		ref, err := rdb.New().Run(q, rdb.DB(db))
		if err != nil {
			return false
		}
		e := &Engine{PartialAgg: true, Exhaustive: true}
		res, err := e.Run(q, db)
		if err != nil {
			t.Logf("seed %d: %v (query %s)", seed, err, q)
			return false
		}
		got, err := res.Relation()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if !relation.EqualAsSets(got, ref) {
			t.Logf("seed %d: exhaustive mismatch for %s", seed, q)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRunErrors(t *testing.T) {
	db := pizzeriaDB()
	e := New()
	if _, err := e.Run(&query.Query{Relations: []string{"Nope"}}, db); err == nil {
		t.Error("unknown relation should fail")
	}
	bad := &query.Query{
		Relations:  []string{"Orders"},
		Aggregates: []query.Aggregate{{Fn: query.Sum}},
	}
	if _, err := e.Run(bad, db); err == nil {
		t.Error("invalid query should fail")
	}
}

func TestRunOnViewRejectsEqualities(t *testing.T) {
	view, cat := pizzeriaView(t)
	q := &query.Query{
		Relations:  []string{"R"},
		Equalities: []query.Equality{{A: "pizza", B: "item"}},
	}
	if _, err := New().RunOnView(q, view, cat); err == nil {
		t.Error("RunOnView with equalities should fail")
	}
}

func TestMaterialiseEnginePath(t *testing.T) {
	// Force the materialised final-aggregate path and compare against
	// the on-the-fly path on the same query.
	view, cat := pizzeriaView(t)
	q := &query.Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
		OrderBy:    []query.OrderItem{{Attr: "customer"}},
	}
	onTheFly, err := New().RunOnView(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	a, err := onTheFly.Relation()
	if err != nil {
		t.Fatal(err)
	}
	mat := &Engine{PartialAgg: true, Materialise: true}
	res, err := mat.RunOnView(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(a, b) {
		t.Fatalf("materialised path differs:\n%v\nvs\n%v", a, b)
	}
}

func TestOrderByAggregateMultiBranchFallback(t *testing.T) {
	// Group-by attributes in different branches (date and package-like):
	// ordering by the aggregate falls back to a flat sort and must still
	// be correct.
	view, cat := pizzeriaView(t)
	q := &query.Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"date", "pizza"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "total"}},
		OrderBy:    []query.OrderItem{{Attr: "total", Desc: true}},
	}
	res, err := New().RunOnView(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	// Reference on flattened view.
	flat, err := view.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	proj, err := flat.Project("customer", "date", "pizza", "item", "price")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := rdb.New().Run(&query.Query{
		Relations:  []string{"F"},
		GroupBy:    []string{"date", "pizza"},
		Aggregates: q.Aggregates,
		OrderBy:    q.OrderBy,
	}, rdb.DB{"F": proj})
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(got, ref) {
		t.Fatalf("fallback mismatch:\n%v\nvs\n%v", got, ref)
	}
	// Descending order on the aggregate column.
	for i := 1; i < len(got.Tuples); i++ {
		if got.Tuples[i-1][2].Int() < got.Tuples[i][2].Int() {
			t.Fatal("not descending by total")
		}
	}
}

func TestCountHelper(t *testing.T) {
	view, cat := pizzeriaView(t)
	q := &query.Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"pizza"},
		Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
	}
	res, err := New().RunOnView(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	n, err := res.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("Count() = %d, want 3 groups", n)
	}
}

func TestForEachEarlyStop(t *testing.T) {
	view, cat := pizzeriaView(t)
	q := &query.Query{Relations: []string{"R"}}
	res, err := New().RunOnView(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	err = res.ForEach(func(relation.Tuple) bool {
		seen++
		return seen < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != 3 {
		t.Errorf("early stop after %d rows, want 3", seen)
	}
}

func TestViewSharingIsCopyOnWrite(t *testing.T) {
	// Heavy restructuring queries must not corrupt the shared view.
	view, cat := pizzeriaView(t)
	before := view.Singletons()
	flatBefore, err := view.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []*query.Query{
		{Relations: []string{"R"}, GroupBy: []string{"customer"},
			Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "r"}},
			OrderBy:    []query.OrderItem{{Attr: "r", Desc: true}}},
		{Relations: []string{"R"}, OrderBy: []query.OrderItem{{Attr: "customer"}, {Attr: "date"}}},
		{Relations: []string{"R"}, Filters: []query.Filter{{Attr: "price", Op: fops.GT, Const: iv(1)}},
			GroupBy:    []string{"pizza"},
			Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}}},
	} {
		res, err := New().RunOnView(q, view, cat)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.Count(); err != nil {
			t.Fatal(err)
		}
	}
	if view.Singletons() != before {
		t.Error("view size changed — view was mutated")
	}
	flatAfter, err := view.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(flatBefore, flatAfter) {
		t.Error("view contents changed — view was mutated")
	}
	if err := view.Check(); err != nil {
		t.Errorf("view invariants broken: %v", err)
	}
}
