package engine

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/values"
	"github.com/factordb/fdb/internal/wal"
)

// copyCatalogDir clones a mutable catalogue directory, truncating the
// named WAL segment to cut bytes.
func copyCatalogDir(t *testing.T, src, dst, walName string, cut int) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if e.Name() == walName {
			b = b[:cut]
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashRecoveryEveryByteBoundary simulates a crash at every byte of
// the WAL: for each prefix length the reopened catalogue must be
// byte-identical (same flat view, same factorisation, same generation)
// to the state after the last fully-acknowledged mutation that fits in
// the prefix.
func TestCrashRecoveryEveryByteBoundary(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "cat")
	m, err := CreateMutable(dir, "pizzeria", pizzeriaDB())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	muts := []*query.Mutation{
		ins("Orders", []values.Value{sv("Anna"), sv("Sunday"), sv("Margherita")}),
		{Op: query.OpDelete, Relation: "Orders", Where: []query.Filter{{Attr: "customer", Op: fops.EQ, Const: sv("Mario")}}},
		{Op: query.OpUpsert, Relation: "Items", Rows: [][]values.Value{{sv("ham"), iv(7)}, {sv("olives"), iv(2)}}},
		ins("Pizzas", []values.Value{sv("Quattro"), sv("artichokes")}),
		{Op: query.OpDelete, Relation: "Items", Where: []query.Filter{{Attr: "price", Op: fops.GE, Const: iv(7)}}},
	}
	// states[i] is the expected view after i acknowledged mutations;
	// ends[i] the WAL byte offset at which mutation i+1's frame ends.
	states := []DB{cloneDB(m.View())}
	var ends []int64
	for _, mut := range muts {
		if _, err := m.Apply(ctx, mut); err != nil {
			t.Fatal(err)
		}
		states = append(states, cloneDB(m.View()))
		ends = append(ends, m.Stats().WALBytes)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	walName := fmt.Sprintf(walPattern, 1)
	b, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(b)) != ends[len(ends)-1] {
		t.Fatalf("WAL is %d bytes, stats said %d", len(b), ends[len(ends)-1])
	}
	for cut := 0; cut <= len(b); cut++ {
		intact := 0
		for _, e := range ends {
			if e <= int64(cut) {
				intact++
			}
		}
		dst := filepath.Join(root, fmt.Sprintf("cut-%04d", cut))
		copyCatalogDir(t, dir, dst, walName, cut)
		m2, err := OpenMutable(dst)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if got := m2.Generation(); got != uint64(intact) {
			t.Fatalf("cut %d: generation %d, want %d", cut, got, intact)
		}
		diffViews(t, m2, states[intact])
		// The recovered catalogue must accept new writes.
		if _, err := m2.Apply(ctx, ins("Orders", []values.Value{sv("post"), sv("crash"), sv("Hawaii")})); err != nil {
			t.Fatalf("cut %d: write after recovery: %v", cut, err)
		}
		if err := m2.Close(); err != nil {
			t.Fatal(err)
		}
		os.RemoveAll(dst)
	}
}

// TestCrashRecoveryCorruptTail flips a bit inside the final WAL frame:
// the checksum must reject it and recovery lands on the previous state.
func TestCrashRecoveryCorruptTail(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "cat")
	m, err := CreateMutable(dir, "pizzeria", pizzeriaDB())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := m.Apply(ctx, ins("Orders", []values.Value{sv("Anna"), sv("Sunday"), sv("Margherita")})); err != nil {
		t.Fatal(err)
	}
	afterFirst := cloneDB(m.View())
	if _, err := m.Apply(ctx, ins("Orders", []values.Value{sv("Ben"), sv("Monday"), sv("Hawaii")})); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, fmt.Sprintf(walPattern, 1))
	b, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0x20
	if err := os.WriteFile(walPath, b, 0o644); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenMutable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if got := m2.Generation(); got != 1 {
		t.Fatalf("generation %d after corrupt tail, want 1", got)
	}
	diffViews(t, m2, afterFirst)
}

// FuzzWALReplay feeds arbitrary bytes through the full recovery path —
// frame scan plus mutation decode — which must reject garbage with an
// error or a truncation, never a panic.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	// Seed with a genuine log so the fuzzer mutates realistic frames.
	seedDir := f.TempDir()
	seedPath := filepath.Join(seedDir, "seed.log")
	l, err := wal.Create(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	for _, mut := range []*query.Mutation{
		ins("Orders", []values.Value{sv("Anna"), iv(3)}),
		{Op: query.OpDelete, Relation: "Orders", Where: []query.Filter{{Attr: "customer", Op: fops.LT, Const: iv(5)}}},
	} {
		p, err := encodeMutation(mut)
		if err != nil {
			f.Fatal(err)
		}
		if err := l.AppendSync(p); err != nil {
			f.Fatal(err)
		}
	}
	l.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := wal.Open(path, func(seq uint64, payload []byte) error {
			mut, err := decodeMutation(payload)
			if err != nil {
				return nil // corrupt payload with a valid frame: skip
			}
			_ = mut.Validate()
			return nil
		})
		if err == nil {
			l.Close()
		}
	})
}
