package engine

// Intra-query parallel enumeration. Every enumeration cursor of the
// engine iterates an outermost loop over one root union of the arena
// representation (the odometer's slot 0); that union partitions into
// contiguous segments, each enumerated by an independent worker cursor
// over the shared read-only store. The consumer drains the workers'
// row chunks in slot-0 iteration order (ascending segments, or
// descending for a DESC outer order), so the merged stream is
// byte-identical to the serial cursor's — the paper's ordering
// guarantees survive because segment boundaries respect the order's
// primary attribute. Workers run ahead of the consumer by a bounded
// number of chunks, keeping memory O(parallelism), and are joined by
// Rows.Close (or Result.Close) so no worker ever touches a recycled
// pooled store.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// MinParallelEnumRows is the smallest outer-loop universe for which
// enumeration fans out; smaller results enumerate serially (chunk
// hand-off would cost more than it saves). Package-visible so tests can
// force either path.
var MinParallelEnumRows = 4096

// MinParallelGroupRows is the fan-out floor for the grouped-aggregation
// cursor specifically. Its universe counts groups, not rows: every group
// already amortises a whole γ evaluation, and each segment worker clones
// evaluator state per group, so the crossover where fan-out wins sits
// far above the plain-enumeration floor (the scale-1 benchmark workload,
// ~100 groups, regressed at P≥2 under the shared floor — see
// bench_baseline.json's parallel/sum-grouped series).
var MinParallelGroupRows = 65536

const (
	// parChunkRows is how many rows a worker batches per hand-off.
	parChunkRows = 256
	// parChunkBuf is how many chunks each segment buffers ahead of the
	// consumer.
	parChunkBuf = 4
)

// Cumulative intra-query parallelism counters, surfaced by
// ParallelStats for the server's /stats accounting.
var (
	parQueries     atomic.Int64
	parEnumWorkers atomic.Int64
)

// ParStats are cumulative intra-query parallelism counters: queries
// executed with a parallelism budget above 1, and segment workers
// spawned per layer (enumeration cursors, f-plan operators, aggregate
// evaluations), plus pooled-store returns for leak accounting.
type ParStats struct {
	Queries      int64 `json:"queries"`
	EnumWorkers  int64 `json:"enumWorkers"`
	OpWorkers    int64 `json:"opWorkers"`
	EvalWorkers  int64 `json:"evalWorkers"`
	StoreReturns int64 `json:"storeReturns"`
}

// ParallelStats returns the process-wide parallel execution counters.
func ParallelStats() ParStats {
	return ParStats{
		Queries:      parQueries.Load(),
		EnumWorkers:  parEnumWorkers.Load(),
		OpWorkers:    fops.ParallelRebuildWorkers(),
		EvalWorkers:  frep.ParallelEvalWorkers(),
		StoreReturns: storeReturns.Load(),
	}
}

// StorePoolReturns returns the cumulative number of pooled arena stores
// handed back (Result.Close and error paths); tests use it to assert
// that every execution returns its store exactly once.
func StorePoolReturns() int64 { return storeReturns.Load() }

// noteParallelExec records one query executed with a parallelism
// budget above 1, for /stats accounting.
func noteParallelExec(ar *fops.ARel) {
	if ar != nil && ar.Par > 1 {
		parQueries.Add(1)
	}
}

// parallelism returns the result's effective intra-query parallelism:
// the budget recorded on the arena relation at execution time, or 1 for
// legacy results.
func (r *Result) parallelism() int {
	if r.ARel != nil && r.ARel.Par > 1 {
		return r.ARel.Par
	}
	return 1
}

// MaxEnumFanout caps enumeration fan-out at the runnable cores. Unlike
// operator and aggregate-evaluation fan-out (whose segmented passes
// stay cheap even when time-sliced), enumeration fan-out pays a per-row
// hand-off from worker to consumer; without a spare core to overlap
// that hand-off with production it is pure overhead, so segments beyond
// GOMAXPROCS can only slow the merge down. Package-visible so tests can
// exercise the merge machinery on small machines.
var MaxEnumFanout = runtime.GOMAXPROCS(0)

// enumFanout clamps a parallelism budget to MaxEnumFanout.
func enumFanout(par int) int {
	if par > MaxEnumFanout {
		return MaxEnumFanout
	}
	return par
}

// segmentable is the window surface of the arena enumerators
// (frep.StoreEnumerator / frep.StoreGroupEnumerator).
type segmentable interface {
	SegmentUniverse() int
	Restrict(lo, hi int)
}

// rowCloser is implemented by cursors that own background workers;
// Rows.Close / Result.Close join them through it.
type rowCloser interface{ close() }

// parSeg is one segment's hand-off lane.
type parSeg struct {
	ch chan []relation.Tuple
	// err is the worker's terminal error; written before ch closes, so
	// the consumer reads it only after the close is observed.
	err error
}

// parCursor merges per-segment worker cursors into one stream, draining
// the segments in the given order. Rows produced before a worker's
// error are delivered first, matching the serial cursor's
// rows-then-error behaviour.
type parCursor struct {
	segs   []*parSeg
	cur    int
	chunk  []relation.Tuple
	pos    int
	quit   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// newParCursor spawns one worker per segment cursor. curs is in segment
// order; reverse drains (and therefore emits) the segments back to
// front, for DESC outer orders whose serial odometer walks the root
// union backwards.
func newParCursor(curs []rowCursor, reverse bool) *parCursor {
	pc := &parCursor{quit: make(chan struct{})}
	pc.segs = make([]*parSeg, len(curs))
	parEnumWorkers.Add(int64(len(curs)))
	for i := range curs {
		pc.segs[i] = &parSeg{ch: make(chan []relation.Tuple, parChunkBuf)}
	}
	if reverse {
		for i, j := 0, len(pc.segs)-1; i < j; i, j = i+1, j-1 {
			pc.segs[i], pc.segs[j] = pc.segs[j], pc.segs[i]
			curs[i], curs[j] = curs[j], curs[i]
		}
	}
	for i := range curs {
		c, seg := curs[i], pc.segs[i]
		pc.wg.Add(1)
		go func() {
			defer pc.wg.Done()
			defer close(seg.ch)
			chunk := make([]relation.Tuple, 0, parChunkRows)
			// One backing array per chunk: rows are copied into buf and
			// sliced out of it, so a chunk costs one allocation instead of
			// one Clone per row. The consumer owns the chunk after the
			// hand-off, so buf is abandoned (never appended to) once sent.
			var buf []values.Value
			flush := func() bool {
				if len(chunk) == 0 {
					return true
				}
				select {
				case seg.ch <- chunk:
					chunk = make([]relation.Tuple, 0, parChunkRows)
					buf = nil
					return true
				case <-pc.quit:
					return false
				}
			}
			for {
				t, ok, err := c.step()
				if err != nil {
					_ = flush()
					seg.err = err
					return
				}
				if !ok {
					_ = flush()
					return
				}
				if buf == nil {
					buf = make([]values.Value, 0, parChunkRows*len(t))
				}
				start := len(buf)
				buf = append(buf, t...)
				chunk = append(chunk, relation.Tuple(buf[start:len(buf):len(buf)]))
				if len(chunk) == parChunkRows && !flush() {
					return
				}
			}
		}()
	}
	return pc
}

func (pc *parCursor) step() (relation.Tuple, bool, error) {
	for {
		if pc.pos < len(pc.chunk) {
			t := pc.chunk[pc.pos]
			pc.pos++
			return t, true, nil
		}
		if pc.cur >= len(pc.segs) {
			return nil, false, nil
		}
		seg := pc.segs[pc.cur]
		chunk, ok := <-seg.ch
		if !ok {
			if seg.err != nil {
				pc.cur = len(pc.segs)
				return nil, false, seg.err
			}
			pc.cur++
			continue
		}
		pc.chunk, pc.pos = chunk, 0
	}
}

// skip discards already-assembled rows: segment workers enumerate their
// whole window regardless, so unlike the serial enumerator skip this
// saves only the consumer-side work. OFFSET correctness is unchanged.
func (pc *parCursor) skip(n int) (int, error) { return skipBySteps(pc, n) }

// close stops and joins the workers. Idempotent; safe before, during or
// after exhaustion.
func (pc *parCursor) close() {
	if pc.closed {
		return
	}
	pc.closed = true
	close(pc.quit)
	pc.wg.Wait()
}

// maybeParallelEnum decides whether to fan an enumeration out: build
// returns one cursor over the full stream (the probe, also the serial
// fallback) whose inner enumerator must satisfy segmentable; when the
// universe is at least floor, fresh per-segment cursors are built with
// Restrict windows and merged by a parCursor. seg extracts the
// segmentable from a built cursor, and desc reports whether the outer
// loop runs descending (drain order reverses). floor is
// MinParallelEnumRows for row-universe cursors and MinParallelGroupRows
// for the grouped cursor, whose universe counts groups.
func (r *Result) maybeParallelEnum(build func() (rowCursor, error), seg func(rowCursor) segmentable, desc bool, floor int) (rowCursor, error) {
	probe, err := build()
	if err != nil {
		return nil, err
	}
	par := enumFanout(r.parallelism())
	if par < 2 {
		return probe, nil
	}
	se := seg(probe)
	if se == nil {
		return probe, nil
	}
	n := se.SegmentUniverse()
	if n < floor {
		return probe, nil
	}
	segs := segmentsFor(se, n, par)
	if len(segs) < 2 {
		return probe, nil
	}
	// The probe has not been stepped; restrict it to serve as segment 0.
	curs := make([]rowCursor, len(segs))
	se.Restrict(segs[0][0], segs[0][1])
	curs[0] = probe
	for w := 1; w < len(segs); w++ {
		c, err := build()
		if err != nil {
			return nil, err
		}
		seg(c).Restrict(segs[w][0], segs[w][1])
		curs[w] = c
	}
	return newParCursor(curs, desc), nil
}

// asSegmentable type-asserts an enumerator to the window surface,
// returning nil for the pointer-based (legacy) enumerators.
func asSegmentable(v any) segmentable {
	se, ok := v.(segmentable)
	if !ok {
		return nil
	}
	return se
}
