package engine

// Mutable catalogues: the durable write path. A MutableCatalog is a
// directory holding an immutable catalogue snapshot (the base), a
// write-ahead log of the mutations applied since that snapshot, and a
// MANIFEST naming which snapshot is authoritative. Reads stay lock-free:
// View() returns an immutable database map whose unmutated relations are
// served exactly as a frozen catalogue would serve them (same pointers,
// same registered factorisations — zero overhead), while mutated
// relations are served through a delta layer per relation:
//
//   - inserts are factorised into a private overlay (Store.Overlay) of
//     the frozen base factorisation and folded into the relation's
//     current root with an incremental linear-path merge;
//   - deletes are a tombstone set over the base flat tuples plus a
//     structural removal from the factorisation (RemoveTuples);
//   - each write bumps the catalogue generation and the next View()
//     publishes a fresh merged relation (new pointer) whose overlay
//     snapshot is registered in the process-wide fact registry, so
//     queries graft the up-to-date factorisation and cached plans
//     detect staleness by pointer identity.
//
// Durability: every acknowledged mutation is appended to the WAL and
// group-committed before Apply returns. Crash anywhere, reopen the
// directory, and replaying snapshot + log reproduces the acknowledged
// state byte-identically. Compact (see compact.go) folds the log into a
// fresh snapshot and truncates it.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
	"github.com/factordb/fdb/internal/wal"
)

const (
	manifestName = "MANIFEST"
	snapPattern  = "snap-%06d.fdbcat"
	walPattern   = "wal-%06d.log"
)

// manifest is the durable pointer to the authoritative snapshot: replay
// starts from Snapshot and applies every WAL segment with an epoch
// greater than Epoch, in epoch order. It is replaced atomically
// (temp + fsync + rename), so a crashed compaction leaves the previous
// snapshot authoritative.
type manifest struct {
	Name     string `json:"name"`
	Snapshot string `json:"snapshot"`
	Epoch    uint64 `json:"epoch"`
}

// mrel is the per-relation write state.
type mrel struct {
	// base is the frozen flat relation from the current snapshot; its
	// registered factorisation backs ov.
	base *relation.Relation
	// ov is the writer's private overlay over the base factorisation;
	// all delta nodes are appended here.
	ov *frep.Store
	// root is the relation's current factorisation root in ov's address
	// space, maintained incrementally by MergeLinear / RemoveTuples.
	root frep.NodeID
	// forest is the relation's linear-path f-tree, reused for batch
	// factorisations.
	forest *ftree.Forest
	// inserts are the flat rows added since base; tombs are the keys of
	// base rows deleted since base.
	inserts []relation.Tuple
	tombs   map[string]bool
	// gen is the catalogue generation of the relation's last mutation;
	// 0 means unmutated (View serves base directly).
	gen uint64
	// pubRel is the merged relation published at generation pubGen, with
	// its overlay-snapshot factorisation registered in the fact registry.
	pubRel *relation.Relation
	pubGen uint64
}

// viewState is one published immutable database view.
type viewState struct {
	gen uint64
	db  DB
}

// MutableStats is a point-in-time snapshot of a mutable catalogue's
// write-path gauges.
type MutableStats struct {
	// Generation counts applied mutations (and compaction rebases) since
	// open; it bumps on every acknowledged write.
	Generation uint64 `json:"generation"`
	// InsertRows / DeleteRows / UpsertRows count rows affected per verb.
	InsertRows int64 `json:"insert_rows"`
	DeleteRows int64 `json:"delete_rows"`
	UpsertRows int64 `json:"upsert_rows"`
	// DeltaRows / TombstoneRows are the current delta-layer sizes summed
	// over relations; both reset to zero after a compaction rebase.
	DeltaRows     int64 `json:"delta_rows"`
	TombstoneRows int64 `json:"tombstone_rows"`
	// WALEpoch is the active segment number; WALBytes / WALRecords /
	// WALSyncs describe the active segment (syncs gauge group-commit
	// batching: records per sync is the effectiveness ratio).
	WALEpoch   uint64 `json:"wal_epoch"`
	WALBytes   int64  `json:"wal_bytes"`
	WALRecords int64  `json:"wal_records"`
	WALSyncs   int64  `json:"wal_syncs"`
	// Compactions counts completed compactions; Compacting reports one
	// in flight.
	Compactions int64 `json:"compactions"`
	Compacting  bool  `json:"compacting"`
}

// MutableCatalog is a durable, queryable, mutable database: a catalogue
// snapshot plus a write-ahead log and per-relation delta layers. Apply
// and Compact may be called concurrently with any number of View-based
// readers; writes are serialised internally.
type MutableCatalog struct {
	name string
	dir  string

	mu     sync.Mutex
	rels   map[string]*mrel
	log    *wal.Log
	epoch  uint64 // active WAL segment number
	gen    uint64
	closed bool

	genA atomic.Uint64
	view atomic.Pointer[viewState]

	compacting  atomic.Bool
	compactions atomic.Int64
	insertRows  atomic.Int64
	deleteRows  atomic.Int64
	upsertRows  atomic.Int64

	stopAuto chan struct{}
	autoDone chan struct{}
}

// CreateMutable initialises dir (created if needed, must not already
// hold a catalogue) with a snapshot of db and an empty WAL, and returns
// the opened catalogue.
func CreateMutable(dir, name string, db DB) (*MutableCatalog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if _, err := os.Stat(filepath.Join(dir, manifestName)); err == nil {
		return nil, fmt.Errorf("engine: %s already holds a mutable catalogue", dir)
	}
	cat, err := catalog.Build(name, db)
	if err != nil {
		return nil, err
	}
	snap := fmt.Sprintf(snapPattern, 0)
	if err := catalog.WriteFile(filepath.Join(dir, snap), cat); err != nil {
		return nil, err
	}
	if err := writeManifest(dir, manifest{Name: name, Snapshot: snap, Epoch: 0}); err != nil {
		return nil, err
	}
	log, err := wal.Create(filepath.Join(dir, fmt.Sprintf(walPattern, 1)))
	if err != nil {
		return nil, err
	}
	m := newMutable(name, dir, cat, log, 1)
	return m, nil
}

// OpenMutable opens the mutable catalogue at dir: loads the manifest's
// snapshot, replays every WAL segment after it in order (torn tails are
// truncated by the framing layer), and resumes appending to the newest
// segment. The recovered state is byte-identical to the acknowledged
// pre-crash state.
func OpenMutable(dir string) (*MutableCatalog, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	// Buffered (non-mmap) load: compaction replaces the snapshot file
	// while queries may still alias the old bytes, so the backing must
	// be plain GC-managed memory.
	cat, err := catalog.Open(filepath.Join(dir, man.Snapshot), nil)
	if err != nil {
		return nil, err
	}
	epochs, err := walSegments(dir)
	if err != nil {
		return nil, err
	}
	m := newMutable(man.Name, dir, cat, nil, 0)
	replay := func(seq uint64, payload []byte) error {
		mut, err := decodeMutation(payload)
		if err != nil {
			return fmt.Errorf("record %d: %w", seq, err)
		}
		if _, _, err := m.applyLocked(mut); err != nil {
			return fmt.Errorf("record %d: %w", seq, err)
		}
		return nil
	}
	live := epochs[:0]
	for _, e := range epochs {
		if e > man.Epoch {
			live = append(live, e)
			continue
		}
		// A segment at or below the manifest epoch is fully covered by
		// the snapshot — a leftover from a compaction that crashed
		// between manifest write and GC.
		os.Remove(filepath.Join(dir, fmt.Sprintf(walPattern, e)))
	}
	for i, e := range live {
		path := filepath.Join(dir, fmt.Sprintf(walPattern, e))
		if i < len(live)-1 {
			if err := wal.Replay(path, replay); err != nil {
				return nil, err
			}
			continue
		}
		log, err := wal.Open(path, replay)
		if err != nil {
			return nil, err
		}
		m.log, m.epoch = log, e
	}
	if m.log == nil {
		e := man.Epoch + 1
		log, err := wal.Create(filepath.Join(dir, fmt.Sprintf(walPattern, e)))
		if err != nil {
			return nil, err
		}
		m.log, m.epoch = log, e
	}
	return m, nil
}

func newMutable(name, dir string, cat *catalog.Catalog, log *wal.Log, epoch uint64) *MutableCatalog {
	m := &MutableCatalog{
		name:  name,
		dir:   dir,
		rels:  make(map[string]*mrel, len(cat.Relations)),
		log:   log,
		epoch: epoch,
	}
	for _, cr := range cat.Relations {
		m.rels[cr.Rel.Name] = newMrel(cr)
	}
	return m
}

// newMrel wires one catalogued relation into the write path: its frozen
// factorisation is registered for grafting and becomes the overlay's
// base tier.
func newMrel(cr *catalog.Relation) *mrel {
	fact := cr.Fact
	if fact == nil {
		// Defensive: factorise here so the delta layer always has a base.
		f := ftree.New()
		f.NewRelationPath(cr.Rel.Attrs...)
		st := frep.NewStore()
		roots, err := frep.BuildStoreUnchecked(st, cr.Rel, f)
		if err != nil {
			panic(fmt.Sprintf("engine: factorising %s: %v", cr.Rel.Name, err))
		}
		fact = &catalog.Fact{Order: append([]string(nil), cr.Rel.Attrs...), Store: st, Root: roots[0]}
	}
	facts.Store(cr.Rel, fact)
	forest := ftree.New()
	forest.NewRelationPath(cr.Rel.Attrs...)
	return &mrel{
		base:   cr.Rel,
		ov:     fact.Store.Overlay(),
		root:   fact.Root,
		forest: forest,
		tombs:  map[string]bool{},
	}
}

// Name returns the catalogue's name.
func (m *MutableCatalog) Name() string { return m.name }

// Dir returns the catalogue's directory.
func (m *MutableCatalog) Dir() string { return m.dir }

// Generation returns the catalogue generation: it bumps on every
// acknowledged mutation and on compaction rebases, so equal generations
// imply identical View contents.
func (m *MutableCatalog) Generation() uint64 { return m.genA.Load() }

// View returns an immutable database snapshot at the current
// generation. Unmutated relations are the frozen base pointers (no
// delta-layer overhead whatsoever); mutated relations are merged views
// whose factorisations are registered for grafting. The map and its
// relations must not be modified; they stay valid (and consistent)
// however many writes follow.
func (m *MutableCatalog) View() DB {
	if v := m.view.Load(); v != nil && v.gen == m.genA.Load() {
		return v.db
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.viewLocked()
}

func (m *MutableCatalog) viewLocked() DB {
	if v := m.view.Load(); v != nil && v.gen == m.gen {
		return v.db
	}
	db := make(DB, len(m.rels))
	for name, mr := range m.rels {
		if mr.gen == 0 {
			db[name] = mr.base
			continue
		}
		if mr.pubGen != mr.gen || mr.pubRel == nil {
			mr.publish()
		}
		db[name] = mr.pubRel
	}
	m.view.Store(&viewState{gen: m.gen, db: db})
	return db
}

// publish materialises the relation's merged flat view and registers
// its overlay-snapshot factorisation under the new relation pointer,
// retiring the previous generation's registration.
func (mr *mrel) publish() {
	if mr.pubRel != nil && mr.pubRel != mr.base {
		facts.Delete(mr.pubRel)
	}
	tuples := make([]relation.Tuple, 0, len(mr.base.Tuples)+len(mr.inserts)-len(mr.tombs))
	for _, t := range mr.base.Tuples {
		if !mr.tombs[t.Key()] {
			tuples = append(tuples, t)
		}
	}
	tuples = append(tuples, mr.inserts...)
	rel, err := relation.New(mr.base.Name, mr.base.Attrs, tuples)
	if err != nil {
		// The rows were validated on insert; a failure here is a
		// programming error, not a data error.
		panic(fmt.Sprintf("engine: publishing %s: %v", mr.base.Name, err))
	}
	facts.Store(rel, &catalog.Fact{
		Order: append([]string(nil), mr.base.Attrs...),
		Store: mr.ov.Snapshot(),
		Root:  mr.root,
	})
	mr.pubRel, mr.pubGen = rel, mr.gen
}

// ErrMutableClosed is returned by operations on a closed catalogue.
var ErrMutableClosed = fmt.Errorf("engine: mutable catalogue closed")

// Apply executes one mutation: the delta layer is updated under the
// writer lock, the statement is appended to the WAL, and Apply returns
// the number of rows affected once the record's group commit has made
// it durable. Statements that change nothing (no-op deletes, inserts of
// already-present rows) are acknowledged without logging.
func (m *MutableCatalog) Apply(ctx context.Context, mut *query.Mutation) (int64, error) {
	if err := mut.Validate(); err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return 0, ErrMutableClosed
	}
	n, changed, err := m.applyLocked(mut)
	if err != nil {
		m.mu.Unlock()
		return 0, err
	}
	var ticket wal.Ticket
	if changed {
		// Encode and append while still holding the lock so the log's
		// record order always equals the apply order (replay re-applies
		// records in log order); the fsync wait happens after unlock, so
		// concurrent writers share one group commit.
		payload, err := encodeMutation(mut)
		if err == nil {
			ticket, err = m.log.Append(payload)
		}
		if err != nil {
			m.mu.Unlock()
			return n, fmt.Errorf("engine: logging mutation: %w", err)
		}
	}
	m.mu.Unlock()
	if changed {
		if err := ticket.Wait(); err != nil {
			return n, fmt.Errorf("engine: wal commit: %w", err)
		}
	}
	return n, nil
}

// applyLocked applies one validated mutation to the delta layers and
// bumps the generation when anything changed. The caller holds m.mu
// (or, during open, has exclusive access).
func (m *MutableCatalog) applyLocked(mut *query.Mutation) (int64, bool, error) {
	mr := m.rels[mut.Relation]
	if mr == nil {
		return 0, false, fmt.Errorf("engine: unknown relation %q", mut.Relation)
	}
	var n int64
	var err error
	switch mut.Op {
	case query.OpInsert:
		n, err = mr.insert(mut.Rows)
		m.insertRows.Add(n)
	case query.OpDelete:
		var match func(relation.Tuple) bool
		match, err = compileWhere(mr, mut.Where)
		if err == nil {
			n = mr.deleteWhere(match)
		}
		m.deleteRows.Add(n)
	case query.OpUpsert:
		n, err = mr.upsert(mut.Rows)
		m.upsertRows.Add(n)
	default:
		err = fmt.Errorf("engine: unknown mutation op %d", mut.Op)
	}
	if err != nil {
		return 0, false, err
	}
	if n == 0 {
		return 0, false, nil
	}
	m.gen++
	mr.gen = m.gen
	m.genA.Store(m.gen)
	return n, true, nil
}

// compileWhere turns DELETE filters into a tuple predicate, validating
// the attributes against the relation's schema.
func compileWhere(mr *mrel, where []query.Filter) (func(relation.Tuple) bool, error) {
	cols := make([]int, len(where))
	for i, f := range where {
		c := -1
		for j, a := range mr.base.Attrs {
			if a == f.Attr {
				c = j
				break
			}
		}
		if c < 0 {
			return nil, fmt.Errorf("engine: relation %q has no attribute %q", mr.base.Name, f.Attr)
		}
		cols[i] = c
	}
	return func(t relation.Tuple) bool {
		for i, f := range where {
			if !f.Op.Holds(t[cols[i]], f.Const) {
				return false
			}
		}
		return true
	}, nil
}

// insert adds the rows not already present (relations are sets under
// factorisation: duplicates collapse), factorises the fresh batch into
// the overlay and merges it into the current root. Returns the number
// of rows actually inserted.
func (mr *mrel) insert(rows [][]values.Value) (int64, error) {
	arity := len(mr.base.Attrs)
	for _, r := range rows {
		if len(r) != arity {
			return 0, fmt.Errorf("engine: %s: inserting %d values into %d attributes", mr.base.Name, len(r), arity)
		}
	}
	// Sort and deduplicate the batch, then drop rows already present;
	// sorting makes replay deterministic regardless of duplicate order.
	batch := make([]relation.Tuple, len(rows))
	for i, r := range rows {
		batch[i] = relation.Tuple(r)
	}
	sort.SliceStable(batch, func(i, j int) bool { return relation.Compare(batch[i], batch[j]) < 0 })
	fresh := batch[:0]
	for i, t := range batch {
		if i > 0 && relation.Compare(batch[i-1], t) == 0 {
			continue
		}
		if containsTuple(mr.ov, mr.root, t) {
			continue
		}
		fresh = append(fresh, t)
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	rel, err := relation.New(mr.base.Name, mr.base.Attrs, fresh)
	if err != nil {
		return 0, fmt.Errorf("engine: %s: %w", mr.base.Name, err)
	}
	roots, err := frep.BuildStoreUnchecked(mr.ov, rel, mr.forest)
	if err != nil {
		return 0, fmt.Errorf("engine: %s: %w", mr.base.Name, err)
	}
	mr.root = frep.MergeLinear(mr.ov, mr.root, roots[0])
	mr.inserts = append(mr.inserts, fresh...)
	return int64(len(fresh)), nil
}

// deleteWhere removes every current row matching the predicate: base
// rows become tombstones, delta rows are dropped, and the matched paths
// are removed from the factorisation. Returns the number of rows
// removed.
func (mr *mrel) deleteWhere(match func(relation.Tuple) bool) int64 {
	var removed [][]values.Value
	for _, t := range mr.base.Tuples {
		if mr.tombs[t.Key()] || !match(t) {
			continue
		}
		mr.tombs[t.Key()] = true
		removed = append(removed, t)
	}
	kept := mr.inserts[:0]
	for _, t := range mr.inserts {
		if match(t) {
			removed = append(removed, t)
		} else {
			kept = append(kept, t)
		}
	}
	mr.inserts = kept
	if len(removed) == 0 {
		return 0
	}
	sort.Slice(removed, func(i, j int) bool {
		return relation.Compare(removed[i], removed[j]) < 0
	})
	mr.root = frep.RemoveTuples(mr.ov, mr.root, removed)
	return int64(len(removed))
}

// upsert replaces rows keyed on the first attribute: per new row, every
// current row whose first attribute compares equal is removed, then the
// row is inserted. Returns rows removed plus rows inserted.
func (mr *mrel) upsert(rows [][]values.Value) (int64, error) {
	arity := len(mr.base.Attrs)
	var n int64
	for _, r := range rows {
		if len(r) != arity {
			return n, fmt.Errorf("engine: %s: upserting %d values into %d attributes", mr.base.Name, len(r), arity)
		}
		key := r[0]
		n += mr.deleteWhere(func(t relation.Tuple) bool {
			return values.Compare(t[0], key) == 0
		})
		ins, err := mr.insert([][]values.Value{r})
		if err != nil {
			return n, err
		}
		n += ins
	}
	return n, nil
}

// containsTuple walks a linear-path factorisation by binary search per
// level, reporting whether the tuple is represented.
func containsTuple(s *frep.Store, root frep.NodeID, t relation.Tuple) bool {
	node := root
	for d := 0; d < len(t); d++ {
		if node == frep.EmptyNode {
			return false
		}
		vals := s.Vals(node)
		i := sort.Search(len(vals), func(i int) bool {
			return values.Compare(vals[i], t[d]) >= 0
		})
		if i == len(vals) || values.Compare(vals[i], t[d]) != 0 {
			return false
		}
		if d < len(t)-1 {
			node = s.Kid(node, i, 0)
		}
	}
	return true
}

// Stats returns the catalogue's write-path gauges.
func (m *MutableCatalog) Stats() MutableStats {
	m.mu.Lock()
	s := MutableStats{
		Generation: m.gen,
		WALEpoch:   m.epoch,
	}
	for _, mr := range m.rels {
		s.DeltaRows += int64(len(mr.inserts))
		s.TombstoneRows += int64(len(mr.tombs))
	}
	log := m.log
	m.mu.Unlock()
	if log != nil {
		s.WALBytes = log.Size()
		s.WALRecords = log.Records()
		s.WALSyncs = log.Syncs()
	}
	s.InsertRows = m.insertRows.Load()
	s.DeleteRows = m.deleteRows.Load()
	s.UpsertRows = m.upsertRows.Load()
	s.Compactions = m.compactions.Load()
	s.Compacting = m.compacting.Load()
	return s
}

// Close stops background compaction, flushes and closes the WAL, and
// unregisters the catalogue's published factorisations. Relations from
// earlier Views stay readable (their memory is GC-managed), but no
// further writes are accepted.
func (m *MutableCatalog) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	stop, done := m.stopAuto, m.autoDone
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, mr := range m.rels {
		facts.Delete(mr.base)
		if mr.pubRel != nil && mr.pubRel != mr.base {
			facts.Delete(mr.pubRel)
		}
	}
	if m.log != nil {
		return m.log.Close()
	}
	return nil
}

func writeManifest(dir string, man manifest) error {
	b, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	b = append(b, '\n')
	path := filepath.Join(dir, manifestName)
	tmp, err := os.CreateTemp(dir, manifestName+".tmp*")
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(b); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		return fmt.Errorf("engine: %w", err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("engine: %w", err)
	}
	return syncDir(dir)
}

func readManifest(dir string) (manifest, error) {
	var man manifest
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return man, fmt.Errorf("engine: %w", err)
	}
	if err := json.Unmarshal(b, &man); err != nil {
		return man, fmt.Errorf("engine: %s manifest: %w", dir, err)
	}
	if man.Snapshot == "" || filepath.Base(man.Snapshot) != man.Snapshot {
		return man, fmt.Errorf("engine: %s manifest: bad snapshot name %q", dir, man.Snapshot)
	}
	return man, nil
}

// walSegments lists the WAL segment epochs present in dir, ascending.
func walSegments(dir string) ([]uint64, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	var epochs []uint64
	for _, p := range matches {
		var e uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "wal-%06d.log", &e); err == nil {
			epochs = append(epochs, e)
		}
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	return epochs, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("engine: syncing %s: %w", dir, err)
	}
	return nil
}
