package engine

// Cancellation suite (run under -race in CI): contexts cancelled before
// planning, during execution and mid-enumeration must surface
// context.Canceled promptly and hand every pooled store back exactly
// once.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// bigDB builds a single-relation database large enough that
// enumeration spans many context-check windows.
func bigDB(t *testing.T, rows int) DB {
	t.Helper()
	ts := make([]relation.Tuple, rows)
	for i := range ts {
		ts[i] = relation.Tuple{
			values.NewInt(int64(i)),
			values.NewInt(int64(i % 97)),
		}
	}
	rel, err := relation.New("Big", []string{"k", "v"}, ts)
	if err != nil {
		t.Fatal(err)
	}
	return DB{"Big": rel}
}

func spjQuery() *query.Query {
	return &query.Query{
		Relations: []string{"Big"},
		OrderBy:   []query.OrderItem{{Attr: "k"}},
	}
}

func groupedQuery() *query.Query {
	return &query.Query{
		Relations:  []string{"Big"},
		GroupBy:    []string{"k"},
		Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
		OrderBy:    []query.OrderItem{{Attr: "k"}},
	}
}

func aggOrderedQuery() *query.Query {
	return &query.Query{
		Relations:  []string{"Big"},
		GroupBy:    []string{"k"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "v", As: "s"}},
		OrderBy:    []query.OrderItem{{Attr: "s", Desc: true}},
	}
}

// TestCancelBeforePlan asserts an already-cancelled context stops
// PrepareContext (greedy and exhaustive) without leaking a store.
func TestCancelBeforePlan(t *testing.T) {
	db := bigDB(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []*Engine{
		{PartialAgg: true},
		{PartialAgg: true, Exhaustive: true},
	} {
		before := storeReturns.Load()
		_, err := eng.PrepareContext(ctx, groupedQuery(), db)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("PrepareContext = %v, want context.Canceled", err)
		}
		if d := storeReturns.Load() - before; d != 0 {
			t.Fatalf("%d store returns during failed prepare, want 0 (none taken)", d)
		}
	}
}

// TestCancelDuringExec asserts a context cancelled before execution
// returns the pooled store exactly once.
func TestCancelDuringExec(t *testing.T) {
	db := bigDB(t, 100)
	eng := New()
	prep, err := eng.Prepare(spjQuery(), db)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := storeReturns.Load()
	_, err = prep.ExecContext(ctx, db)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecContext = %v, want context.Canceled", err)
	}
	if d := storeReturns.Load() - before; d != 1 {
		t.Fatalf("store returned %d times on cancelled Exec, want exactly 1", d)
	}

	// A cancelled shared-snapshot build must not poison the Prepared.
	if _, err := prep.ExecSharedContext(ctx, db); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecSharedContext(cancelled) = %v, want context.Canceled", err)
	}
	res, err := prep.ExecSharedContext(context.Background(), db)
	if err != nil {
		t.Fatalf("ExecSharedContext after cancelled build = %v", err)
	}
	res.Close()
}

// cancelMidStream runs the query, reads a few rows, cancels, drains,
// and asserts prompt termination with context.Canceled plus exactly one
// store return across Close (called twice).
func cancelMidStream(t *testing.T, name string, run func(ctx context.Context) (*Result, error)) {
	t.Helper()
	before := storeReturns.Load()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := run(ctx)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	rows, err := res.Rows(ctx)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	for i := 0; i < 5; i++ {
		if !rows.Next() {
			t.Fatalf("%s: stream ended after %d rows", name, i)
		}
	}
	cancel()
	n := 0
	for rows.Next() {
		n++
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("%s: rows.Err() = %v, want context.Canceled", name, rows.Err())
	}
	// Promptness: at most one context-check window of rows after cancel.
	if n > ctxCheckEvery {
		t.Fatalf("%s: %d rows emitted after cancel, want <= %d", name, n, ctxCheckEvery)
	}
	rows.Close()
	res.Close()
	res.Close()
	if d := storeReturns.Load() - before; d != 1 {
		t.Fatalf("%s: store returned %d times, want exactly 1", name, d)
	}
}

// TestCancelMidEnumeration covers the flat, grouped and
// aggregate-ordered cursor paths.
func TestCancelMidEnumeration(t *testing.T) {
	db := bigDB(t, 20000)
	eng := New()
	cases := []struct {
		name string
		mk   func() *query.Query
	}{
		{"flat-ordered", spjQuery},
		{"grouped", groupedQuery},
		{"agg-ordered", aggOrderedQuery},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cancelMidStream(t, c.name, func(ctx context.Context) (*Result, error) {
				return eng.RunContext(ctx, c.mk(), db)
			})
		})
	}
}

// TestCancelMidEnumerationView covers a view-backed (RunOnARel) result:
// not pooled, but the stream must still stop on cancellation.
func TestCancelMidEnumerationView(t *testing.T) {
	db := bigDB(t, 20000)
	f := ftree.New()
	f.NewRelationPath("k", "v")
	view, err := fops.FromRelationStore(frep.NewStore(), db["Big"], f)
	if err != nil {
		t.Fatal(err)
	}
	cat := []ftree.CatalogRelation{{Name: "Big", Attrs: []string{"k", "v"}, Size: 20000}}
	eng := New()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q := &query.Query{Relations: []string{"Big"}, OrderBy: []query.OrderItem{{Attr: "k"}}}
	res, err := eng.RunOnARel(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	rows, err := res.Rows(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended after %d rows", i)
		}
	}
	cancel()
	n := 0
	for rows.Next() {
		n++
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("rows.Err() = %v, want context.Canceled", rows.Err())
	}
	if n > ctxCheckEvery {
		t.Fatalf("%d rows emitted after cancel, want <= %d", n, ctxCheckEvery)
	}
}

// TestCancelConcurrent exercises cancellation racing a running
// enumeration (meaningful under -race): one goroutine streams, another
// cancels shortly after, repeated across several queries concurrently.
func TestCancelConcurrent(t *testing.T) {
	db := bigDB(t, 20000)
	eng := New()
	prep, err := eng.Prepare(spjQuery(), db)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 5; i++ {
				ctx, cancel := context.WithCancel(context.Background())
				res, err := prep.ExecSharedContext(ctx, db)
				if err != nil {
					cancel()
					errc <- err
					return
				}
				rows, err := res.Rows(ctx)
				if err != nil {
					cancel()
					res.Close()
					errc <- err
					return
				}
				go func() {
					time.Sleep(time.Duration(w+1) * 100 * time.Microsecond)
					cancel()
				}()
				for rows.Next() {
				}
				if err := rows.Err(); err != nil && !errors.Is(err, context.Canceled) {
					cancel()
					res.Close()
					errc <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
				rows.Close()
				res.Close()
				cancel()
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}

// TestRunOnARelContextCancelled pins the ctxflow fix from the fdbvet
// PR: view execution (RunOnARelContext / RunOnViewContext) must honour
// the caller's context instead of minting a fresh root internally. A
// pre-cancelled context has to stop the plan before the first
// operator runs.
func TestRunOnARelContextCancelled(t *testing.T) {
	db := bigDB(t, 20000)
	f := ftree.New()
	f.NewRelationPath("k", "v")
	view, err := fops.FromRelationStore(frep.NewStore(), db["Big"], f)
	if err != nil {
		t.Fatal(err)
	}
	cat := []ftree.CatalogRelation{{Name: "Big", Attrs: []string{"k", "v"}, Size: 20000}}
	eng := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// groupedQuery carries a γ aggregation, so the plan has at least one
	// operator and the pre-operator context check must fire.
	if _, err := eng.RunOnARelContext(ctx, groupedQuery(), view, cat); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunOnARelContext(cancelled) = %v, want context.Canceled", err)
	}
	// The uncancelled path through the same API still works.
	res, err := eng.RunOnARelContext(context.Background(), groupedQuery(), view, cat)
	if err != nil {
		t.Fatal(err)
	}
	res.Close()
}

// TestRunOnViewContextCancelled is the pointer-representation twin of
// TestRunOnARelContextCancelled.
func TestRunOnViewContextCancelled(t *testing.T) {
	db := bigDB(t, 20000)
	f := ftree.New()
	f.NewRelationPath("k", "v")
	view, err := fops.FromRelation(db["Big"], f)
	if err != nil {
		t.Fatal(err)
	}
	cat := []ftree.CatalogRelation{{Name: "Big", Attrs: []string{"k", "v"}, Size: 20000}}
	eng := New()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.RunOnViewContext(ctx, groupedQuery(), view, cat); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunOnViewContext(cancelled) = %v, want context.Canceled", err)
	}
}
