package engine

import (
	"bytes"
	"testing"

	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/workload"
)

// benchDB builds the workload database once per benchmark run.
func benchDB(b *testing.B) DB {
	b.Helper()
	ds := workload.Generate(workload.Config{Scale: 1})
	db := DB(ds.DB())
	r1, err := ds.FlatR1()
	if err != nil {
		b.Fatal(err)
	}
	r2, err := ds.FlatR2()
	if err != nil {
		b.Fatal(err)
	}
	r3, err := ds.R3()
	if err != nil {
		b.Fatal(err)
	}
	db["R1"], db["R2"], db["R3"] = r1, r2, r3
	return db
}

// BenchmarkCatalogBuild is the no-snapshot boot path: factorise every
// relation from flat tuples.
func BenchmarkCatalogBuild(b *testing.B) {
	db := benchDB(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := catalog.Build("bench", db); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCatalogLoad is the snapshot boot path: parse the container
// out of one in-memory byte slice (zero-copy).
func BenchmarkCatalogLoad(b *testing.B) {
	db := benchDB(b)
	var buf bytes.Buffer
	if _, err := SaveCatalog(&buf, "bench", db); err != nil {
		b.Fatal(err)
	}
	snap := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := catalog.Read(snap, true); err != nil {
			b.Fatal(err)
		}
	}
}
