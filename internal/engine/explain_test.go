package engine

import (
	"strings"
	"testing"

	"github.com/factordb/fdb/internal/query"
)

func TestExplainOutput(t *testing.T) {
	view, cat := pizzeriaView(t)
	q := &query.Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
	}
	res, err := New().RunOnView(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Explain()
	for _, frag := range []string{"f-plan:", "γ", "cost:", "result f-tree:", "customer", "singletons"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, out)
		}
	}
}

func TestExplainNoOps(t *testing.T) {
	// A query the view supports directly has an empty plan.
	view, cat := pizzeriaView(t)
	q := &query.Query{Relations: []string{"R"}}
	res, err := New().RunOnView(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Explain()
	if !strings.Contains(out, "no operators") {
		t.Errorf("Explain should report the empty plan:\n%s", out)
	}
}
