package engine

// Catalogue persistence: saving a database as a disk snapshot and
// loading it back without re-sorting or re-factorising the base data.
// A loaded catalogue also registers its factorised base relations in a
// process-wide fact registry keyed by relation identity, so the first
// ExecShared of a prepared statement whose chosen path order matches a
// stored factorisation grafts the prebuilt slabs instead of rebuilding
// from flat tuples.

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/factordb/fdb/internal/catalog"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/relation"
)

// Catalog is a loaded (or built) catalogue: the flat database plus the
// factorised base relations that back it. Obtain one with LoadCatalog /
// LoadCatalogFile, query Catalog.DB, and Close it when the data is no
// longer needed (required for mmap-backed catalogues).
type Catalog struct {
	// Name is the catalogue's self-declared name.
	Name string
	// DB is the loaded database; its relations must not be modified.
	DB DB

	cat  *catalog.Catalog
	once sync.Once
}

// facts is the process-wide registry of prebuilt base-relation
// factorisations, keyed by relation identity (pointer) — unambiguous
// across databases even when names collide. Entries are added when a
// catalogue is loaded and dropped when it is closed; the stores are
// frozen and read-only, so any number of queries may graft from one
// entry concurrently.
var facts sync.Map // *relation.Relation → *catalog.Fact

// factFor returns the registered factorisation of rel in the given path
// order, or nil.
func factFor(rel *relation.Relation, order []string) *catalog.Fact {
	v, ok := facts.Load(rel)
	if !ok {
		return nil
	}
	f := v.(*catalog.Fact)
	if len(f.Order) != len(order) {
		return nil
	}
	for i := range order {
		if f.Order[i] != order[i] {
			return nil
		}
	}
	return f
}

// SaveCatalog factorises every relation of db over its attribute path
// and writes the catalogue snapshot (schema, flat tuples and factorised
// stores) to w. It implements the "save" half of catalogue persistence;
// the written bytes are canonical (byte-identical across saves of the
// same data).
func SaveCatalog(w io.Writer, name string, db DB) (int64, error) {
	c, err := catalog.Build(name, db)
	if err != nil {
		return 0, err
	}
	return c.WriteTo(w)
}

// SaveCatalogFile is SaveCatalog writing atomically to path (temp file
// in the same directory, fsync, rename), so a crash mid-write never
// leaves a partial snapshot and concurrent readers keep the old one.
func SaveCatalogFile(path, name string, db DB) error {
	c, err := catalog.Build(name, db)
	if err != nil {
		return err
	}
	return catalog.WriteFile(path, c)
}

// LoadCatalog reads a catalogue snapshot from r and returns the loaded
// database with its factorised base relations registered for ExecShared
// reuse.
func LoadCatalog(r io.Reader) (*Catalog, error) {
	b, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("engine: reading catalogue: %w", err)
	}
	c, err := catalog.Read(b, true)
	if err != nil {
		return nil, err
	}
	return wrapCatalog(c), nil
}

// LoadCatalogFile loads the catalogue snapshot at path. With mmap set
// the file is memory-mapped and slabs and strings are used in place
// (zero-copy: load time is O(metadata), data pages fault in on demand);
// otherwise the file is read into private memory with one contiguous
// read. In both cases Close releases the backing bytes.
func LoadCatalogFile(path string, mmap bool) (*Catalog, error) {
	var l catalog.Loader
	if mmap {
		l = catalog.MmapLoader(path)
	}
	c, err := catalog.Open(path, l)
	if err != nil {
		return nil, err
	}
	return wrapCatalog(c), nil
}

func wrapCatalog(c *catalog.Catalog) *Catalog {
	out := &Catalog{Name: c.Name, DB: DB{}, cat: c}
	for _, r := range c.Relations {
		out.DB[r.Rel.Name] = r.Rel
		if r.Fact != nil {
			facts.Store(r.Rel, r.Fact)
		}
	}
	return out
}

// Close unregisters the catalogue's factorisations and releases the
// snapshot's backing bytes (the mmap, when one is used). The catalogue's
// relations — and any query results still aliasing its strings — must
// not be used afterwards. Close is idempotent.
func (c *Catalog) Close() error {
	var err error
	c.once.Do(func() {
		for _, r := range c.cat.Relations {
			facts.Delete(r.Rel)
		}
		err = c.cat.Close()
	})
	return err
}

// factGrafts counts base-relation builds served by grafting a prebuilt
// catalogue factorisation instead of re-sorting flat tuples; tests (and
// FactGrafts) observe it.
var factGrafts atomic.Int64

// FactGrafts returns the cumulative number of base-relation builds
// served from catalogue factorisations.
func FactGrafts() int64 { return factGrafts.Load() }

// graftFact appends the prebuilt factorisation into st and returns the
// remapped root.
func graftFact(st *frep.Store, f *catalog.Fact) frep.NodeID {
	factGrafts.Add(1)
	remap := st.Graft(f.Store)
	return remap(f.Root)
}
