package engine

import (
	"fmt"
	"sort"
	"sync"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/plan"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// aggOutput computes one aggregate output value from the evaluated field
// values of a row.
type aggOutput struct {
	fn     query.AggFn
	f1, f2 int // field indices; f2 used by avg (count)
}

func (a aggOutput) value(fieldVals []values.Value) values.Value {
	switch a.fn {
	case query.Avg:
		s, c := fieldVals[a.f1], fieldVals[a.f2]
		if c.Kind() == values.Int && c.Int() == 0 {
			return values.NullValue()
		}
		if s.IsNull() {
			return values.NullValue()
		}
		return values.Div(s, c)
	default:
		return fieldVals[a.f1]
	}
}

// buildAggOutputs maps query aggregates onto positions in the field list.
func buildAggOutputs(aggs []query.Aggregate, fields []ftree.AggField) ([]aggOutput, error) {
	idx := func(f ftree.AggField) int {
		for i, g := range fields {
			if g == f {
				return i
			}
		}
		return -1
	}
	out := make([]aggOutput, len(aggs))
	for i, a := range aggs {
		var o aggOutput
		o.fn = a.Fn
		switch a.Fn {
		case query.Count:
			o.f1 = idx(ftree.AggField{Fn: ftree.Count})
		case query.Sum:
			o.f1 = idx(ftree.AggField{Fn: ftree.Sum, Arg: a.Arg})
		case query.Min:
			o.f1 = idx(ftree.AggField{Fn: ftree.Min, Arg: a.Arg})
		case query.Max:
			o.f1 = idx(ftree.AggField{Fn: ftree.Max, Arg: a.Arg})
		case query.Avg:
			o.f1 = idx(ftree.AggField{Fn: ftree.Sum, Arg: a.Arg})
			o.f2 = idx(ftree.AggField{Fn: ftree.Count})
		}
		if o.f1 < 0 || (a.Fn == query.Avg && o.f2 < 0) {
			return nil, fmt.Errorf("engine: aggregate %s not computed by the plan", a)
		}
		out[i] = o
	}
	return out, nil
}

// havingFilter applies the HAVING conditions to an assembled output row.
type havingFilter struct {
	conds []query.Filter
	cols  []int
}

func newHavingFilter(q *query.Query) (*havingFilter, error) {
	if len(q.Having) == 0 {
		return nil, nil
	}
	outs := q.OutputAttrs()
	h := &havingFilter{conds: q.Having}
	for _, c := range q.Having {
		found := -1
		for j, o := range outs {
			if o == c.Attr {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("engine: HAVING references unknown output %q", c.Attr)
		}
		h.cols = append(h.cols, found)
	}
	return h, nil
}

func (h *havingFilter) keep(row relation.Tuple) bool {
	if h == nil {
		return true
	}
	for i, c := range h.conds {
		if !c.Op.Holds(row[h.cols[i]], c.Const) {
			return false
		}
	}
	return true
}

// newSortedCursor is the fallback for ordering by an aggregate when the
// group-by attributes span several branches of the f-tree (no single
// aggregate subtree exists): the grouped output is materialised and
// sorted flat, as a relational engine would. With parallelism, each
// segment worker materialises and sorts its own run of groups and the
// runs merge preferring the earlier run on ties — exactly the stable
// sort of the serially concatenated output.
func (r *Result) newSortedCursor() (rowCursor, error) {
	q := r.Query
	cmp, err := sortedOutputCmp(q)
	if err != nil {
		return nil, err
	}
	probe, err := r.buildGroupedCursor(false)
	if err != nil {
		return nil, err
	}
	collect := func(cur rowCursor) ([]relation.Tuple, error) {
		var rows []relation.Tuple
		for {
			t, ok, err := cur.step()
			if err != nil {
				return nil, err
			}
			if !ok {
				return rows, nil
			}
			rows = append(rows, t.Clone())
		}
	}
	var runs [][]relation.Tuple
	par := enumFanout(r.parallelism())
	se := asSegmentable(probe.ge)
	var segs [][2]int
	if par >= 2 && se != nil && se.SegmentUniverse() >= MinParallelEnumRows {
		segs = segmentsFor(se, se.SegmentUniverse(), par)
	}
	if len(segs) >= 2 {
		// The probe has not been stepped; restrict it to serve as the
		// first segment's cursor.
		curs := make([]*groupCursor, len(segs))
		se.Restrict(segs[0][0], segs[0][1])
		curs[0] = probe
		for w := 1; w < len(segs); w++ {
			c, err := r.buildGroupedCursor(false)
			if err != nil {
				return nil, err
			}
			asSegmentable(c.ge).Restrict(segs[w][0], segs[w][1])
			curs[w] = c
		}
		runs = make([][]relation.Tuple, len(segs))
		errs := make([]error, len(segs))
		parEnumWorkers.Add(int64(len(segs)))
		var wg sync.WaitGroup
		for w := range curs {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				rows, err := collect(curs[w])
				if err != nil {
					errs[w] = err
					return
				}
				sort.SliceStable(rows, func(x, y int) bool { return cmp(rows[x], rows[y]) < 0 })
				runs[w] = rows
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	} else {
		rows, err := collect(probe)
		if err != nil {
			return nil, err
		}
		sort.SliceStable(rows, func(x, y int) bool { return cmp(rows[x], rows[y]) < 0 })
		runs = [][]relation.Tuple{rows}
	}
	return &sliceCursor{rows: mergeSortedRuns(runs, cmp)}, nil
}

// sortedOutputCmp builds the sort-fallback comparator over output rows:
// the ORDER BY keys, ties broken by full-tuple comparison — the same
// total order relation.Sort applies, so parallel runs merge into the
// serial sort's output byte for byte.
func sortedOutputCmp(q *query.Query) (func(a, b relation.Tuple) int, error) {
	outs := q.OutputAttrs()
	idx := make([]int, len(q.OrderBy))
	desc := make([]bool, len(q.OrderBy))
	for i, o := range q.OrderBy {
		idx[i] = -1
		for j, a := range outs {
			if a == o.Attr {
				idx[i] = j
				break
			}
		}
		if idx[i] < 0 {
			return nil, fmt.Errorf("engine: sort: output has no attribute %q", o.Attr)
		}
		desc[i] = o.Desc
	}
	return func(a, b relation.Tuple) int {
		for i, j := range idx {
			c := values.Compare(a[j], b[j])
			if c != 0 {
				if desc[i] {
					return -c
				}
				return c
			}
		}
		return relation.Compare(a, b)
	}, nil
}

// mergeSortedRuns k-way merges sorted runs, preferring the earliest run
// on comparator ties: together with per-run stable sorts this equals a
// stable sort of the runs' concatenation.
func mergeSortedRuns(runs [][]relation.Tuple, cmp func(a, b relation.Tuple) int) []relation.Tuple {
	if len(runs) == 1 {
		return runs[0]
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]relation.Tuple, 0, total)
	pos := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for w := range runs {
			if pos[w] >= len(runs[w]) {
				continue
			}
			if best < 0 || cmp(runs[w][pos[w]], runs[best][pos[best]]) < 0 {
				best = w
			}
		}
		out = append(out, runs[best][pos[best]])
		pos[best]++
	}
	return out
}

// matCursor enumerates the materialised-aggregate representation,
// assembling group columns and aggregate outputs (finalising avg from
// its (sum, count) vector) and applying HAVING.
type matCursor struct {
	en       frep.TupleEnum
	groupIdx []int
	aggCols  []int
	avgPairs []int
	having   *havingFilter
	out      relation.Tuple
}

func (c *matCursor) step() (relation.Tuple, bool, error) {
	for c.en.Next() {
		t := c.en.Tuple()
		for i, j := range c.groupIdx {
			c.out[i] = t[j]
		}
		for i, j := range c.aggCols {
			if p := c.avgPairs[i]; p >= 0 {
				cnt := t[p]
				if cnt.Kind() == values.Int && cnt.Int() == 0 {
					c.out[len(c.groupIdx)+i] = values.NullValue()
				} else {
					c.out[len(c.groupIdx)+i] = values.Div(t[j], cnt)
				}
			} else {
				c.out[len(c.groupIdx)+i] = t[j]
			}
		}
		if !c.having.keep(c.out) {
			continue
		}
		return c.out, true, nil
	}
	return nil, false, nil
}

func (c *matCursor) skip(n int) (int, error) {
	if c.having == nil {
		return c.en.Skip(n), nil
	}
	return skipBySteps(c, n)
}

// newMaterialisedCursor materialises the final aggregate into a single
// attribute (required to order by an aggregate output), restructures for
// the order, and enumerates. The ordered aggregate's field is placed
// first in the node's field list so the sorted vector order coincides
// with the requested order. When the group-by attributes span several
// branches (no single aggregate subtree), it falls back to the flat
// sort of newSortedCursor.
func (r *Result) newMaterialisedCursor() (rowCursor, error) {
	q := r.Query
	if len(q.GroupBy) == 0 {
		// Global aggregate: a single row; ordering is irrelevant.
		return r.newGroupedCursor(true)
	}
	// Field order: ordered aggregate outputs first.
	ordered := map[string]bool{}
	inG := map[string]bool{}
	for _, g := range q.GroupBy {
		inG[g] = true
	}
	for _, o := range q.OrderBy {
		if !inG[o.Attr] {
			ordered[o.Attr] = true
		}
	}
	var aggsSorted []query.Aggregate
	for _, a := range q.Aggregates {
		if ordered[a.OutName()] {
			aggsSorted = append(aggsSorted, a)
		}
	}
	for _, a := range q.Aggregates {
		if !ordered[a.OutName()] {
			aggsSorted = append(aggsSorted, a)
		}
	}
	if len(aggsSorted) > 0 && ordered[aggsSorted[0].OutName()] && aggsSorted[0].Fn == query.Avg && len(q.Aggregates) > 1 {
		return nil, fmt.Errorf("engine: ORDER BY avg(…) is only supported as the sole aggregate")
	}
	fields := plan.RequiredFields(aggsSorted)

	// Locate the single maximal non-group subtree; when the group-by
	// attributes span several branches no such subtree exists and we fall
	// back to a flat sort of the grouped output.
	u, err := r.singleNonGroupSubtree(inG)
	if err != nil {
		return r.newSortedCursor()
	}
	if !(u.IsLeaf() && u.IsAgg() && fieldsEqual(u.Agg.Fields, fields)) {
		if err := r.rel().GammaNode(u, fields); err != nil {
			return nil, err
		}
		if u2, err2 := r.singleNonGroupSubtree(inG); err2 == nil {
			u = u2
		} else {
			return nil, err2
		}
	}
	// Name the node: a single non-avg aggregate gets its output alias; an
	// avg-only aggregate is finalised to its scalar; otherwise the node
	// keeps its label and outputs address label.field columns.
	aggNodeName := attrOf(u)
	avgOnly := len(q.Aggregates) == 1 && q.Aggregates[0].Fn == query.Avg
	if avgOnly {
		alias := q.Aggregates[0].OutName()
		if err := r.rel().ComputeScalar(aggNodeName, alias, func(v values.Value) values.Value {
			return values.Div(v.VecAt(0), v.VecAt(1))
		}); err != nil {
			return nil, err
		}
		aggNodeName = alias
	} else if len(q.Aggregates) == 1 {
		alias := q.Aggregates[0].OutName()
		if err := r.rel().Rename(aggNodeName, alias); err != nil {
			return nil, err
		}
		aggNodeName = alias
	}

	// Restructure for the order: group attributes by name, aggregate
	// outputs via the aggregate node's name.
	var orderAttrs []string
	var specs []frep.OrderSpec
	for _, o := range q.OrderBy {
		attr := o.Attr
		if !inG[attr] {
			attr = aggNodeName
		}
		orderAttrs = append(orderAttrs, attr)
		specs = append(specs, frep.OrderSpec{Attr: attr, Desc: o.Desc})
	}
	for i := 0; ; i++ {
		if i > 1000 {
			return nil, fmt.Errorf("engine: order restructuring did not converge")
		}
		v := r.Tree().OrderViolation(orderAttrs)
		if v == nil {
			break
		}
		if err := r.rel().SwapNode(v); err != nil {
			return nil, err
		}
	}

	build := func() (rowCursor, error) {
		en, err := r.rel().Enumerator(specs)
		if err != nil {
			return nil, err
		}
		// Output columns: group attributes by name; aggregates by alias
		// (or label.field / scalar columns).
		schema := en.Schema()
		groupIdx, err := columnIndices(schema, q.GroupBy)
		if err != nil {
			return nil, err
		}
		node := r.Tree().ResolveAttr(aggNodeName)
		if node == nil {
			return nil, fmt.Errorf("engine: internal: aggregate node %q lost", aggNodeName)
		}
		aggCols, avgPairs, err := aggregateColumns(q, node, schema, avgOnly)
		if err != nil {
			return nil, err
		}
		having, err := newHavingFilter(q)
		if err != nil {
			return nil, err
		}
		return &matCursor{
			en:       en,
			groupIdx: groupIdx,
			aggCols:  aggCols,
			avgPairs: avgPairs,
			having:   having,
			out:      make(relation.Tuple, len(groupIdx)+len(aggCols)),
		}, nil
	}
	desc := len(specs) > 0 && specs[0].Desc
	return r.maybeParallelEnum(build, func(c rowCursor) segmentable {
		return asSegmentable(c.(*matCursor).en)
	}, desc, MinParallelEnumRows)
}

// singleNonGroupSubtree finds the unique maximal subtree containing no
// group-by attribute.
func (r *Result) singleNonGroupSubtree(inG map[string]bool) (*ftree.Node, error) {
	hasG := func(n *ftree.Node) bool {
		found := false
		n.Walk(func(m *ftree.Node) {
			if m.IsAgg() {
				return
			}
			for _, a := range m.Attrs {
				if inG[a] {
					found = true
				}
			}
		})
		return found
	}
	var cands []*ftree.Node
	var walk func(n *ftree.Node)
	walk = func(n *ftree.Node) {
		if !hasG(n) {
			cands = append(cands, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, root := range r.Tree().Roots {
		walk(root)
	}
	if len(cands) != 1 {
		return nil, fmt.Errorf("engine: ordering by an aggregate needs a single aggregate subtree; found %d (restructure the group-by attributes into a chain)", len(cands))
	}
	return cands[0], nil
}

// aggregateColumns resolves each query aggregate to a column of the
// enumeration schema; avgPairs[i] holds the count column for avg outputs
// computed from (sum,count) vectors, or -1.
func aggregateColumns(q *query.Query, node *ftree.Node, schema []string, avgScalar bool) ([]int, []int, error) {
	colOf := func(name string) int {
		for j, s := range schema {
			if s == name {
				return j
			}
		}
		return -1
	}
	fieldCol := func(f ftree.AggField) int {
		if node.IsAgg() {
			cols := frep.NodeColumns(node)
			for i, nf := range node.Agg.Fields {
				if nf == f {
					return colOf(cols[i])
				}
			}
			return -1
		}
		return colOf(node.Label())
	}
	aggCols := make([]int, len(q.Aggregates))
	avgPairs := make([]int, len(q.Aggregates))
	for i, a := range q.Aggregates {
		avgPairs[i] = -1
		switch {
		case avgScalar || !node.IsAgg():
			aggCols[i] = colOf(node.Label())
		case a.Fn == query.Avg:
			aggCols[i] = fieldCol(ftree.AggField{Fn: ftree.Sum, Arg: a.Arg})
			avgPairs[i] = fieldCol(ftree.AggField{Fn: ftree.Count})
		case a.Fn == query.Count:
			aggCols[i] = fieldCol(ftree.AggField{Fn: ftree.Count})
		case a.Fn == query.Sum:
			aggCols[i] = fieldCol(ftree.AggField{Fn: ftree.Sum, Arg: a.Arg})
		case a.Fn == query.Min:
			aggCols[i] = fieldCol(ftree.AggField{Fn: ftree.Min, Arg: a.Arg})
		case a.Fn == query.Max:
			aggCols[i] = fieldCol(ftree.AggField{Fn: ftree.Max, Arg: a.Arg})
		}
		if aggCols[i] < 0 {
			return nil, nil, fmt.Errorf("engine: cannot locate output column for %s", a)
		}
		if a.Fn == query.Avg && !avgScalar && avgPairs[i] < 0 {
			return nil, nil, fmt.Errorf("engine: cannot locate count column for %s", a)
		}
	}
	return aggCols, avgPairs, nil
}

func fieldsEqual(a, b []ftree.AggField) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// attrOf mirrors plan.attrOf for engine-internal node addressing.
func attrOf(n *ftree.Node) string {
	if n.IsAgg() {
		if n.Alias != "" {
			return n.Alias
		}
		return n.Agg.Label()
	}
	return n.Attrs[0]
}
