package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/rdb"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

func init() { fops.Paranoid = true }

func iv(i int64) values.Value  { return values.NewInt(i) }
func sv(s string) values.Value { return values.NewString(s) }

func pizzeriaDB() DB {
	return DB{
		"Orders": relation.MustNew("Orders", []string{"customer", "date", "pizza"}, []relation.Tuple{
			{sv("Mario"), sv("Monday"), sv("Capricciosa")},
			{sv("Mario"), sv("Tuesday"), sv("Margherita")},
			{sv("Pietro"), sv("Friday"), sv("Hawaii")},
			{sv("Lucia"), sv("Friday"), sv("Hawaii")},
			{sv("Mario"), sv("Friday"), sv("Capricciosa")},
		}),
		"Pizzas": relation.MustNew("Pizzas", []string{"pizza2", "item"}, []relation.Tuple{
			{sv("Margherita"), sv("base")},
			{sv("Capricciosa"), sv("base")},
			{sv("Capricciosa"), sv("ham")},
			{sv("Capricciosa"), sv("mushrooms")},
			{sv("Hawaii"), sv("base")},
			{sv("Hawaii"), sv("ham")},
			{sv("Hawaii"), sv("pineapple")},
		}),
		"Items": relation.MustNew("Items", []string{"item2", "price"}, []relation.Tuple{
			{sv("base"), iv(6)},
			{sv("ham"), iv(1)},
			{sv("mushrooms"), iv(1)},
			{sv("pineapple"), iv(2)},
		}),
	}
}

func pizzeriaEqualities() []query.Equality {
	return []query.Equality{{A: "pizza", B: "pizza2"}, {A: "item", B: "item2"}}
}

// pizzeriaView materialises R = Orders ⋈ Pizzas ⋈ Items as a factorised
// view over T1 by running the identity SPJ query through the engine.
func pizzeriaView(t *testing.T) (*fops.FRel, []ftree.CatalogRelation) {
	t.Helper()
	db := pizzeriaDB()
	q := &query.Query{
		Relations:  []string{"Orders", "Pizzas", "Items"},
		Equalities: pizzeriaEqualities(),
	}
	res, err := New().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	var cat []ftree.CatalogRelation
	for name, rel := range db {
		cat = append(cat, ftree.CatalogRelation{Name: name, Attrs: rel.Attrs, Size: rel.Cardinality()})
	}
	return res.Factorisation(), cat
}

func TestRunRevenuePerCustomer(t *testing.T) {
	q := &query.Query{
		Relations:  []string{"Orders", "Pizzas", "Items"},
		Equalities: pizzeriaEqualities(),
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
		OrderBy:    []query.OrderItem{{Attr: "customer"}},
	}
	res, err := New().Run(q, pizzeriaDB())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustNew("want", []string{"customer", "revenue"}, []relation.Tuple{
		{sv("Lucia"), iv(9)},
		{sv("Mario"), iv(22)},
		{sv("Pietro"), iv(9)},
	})
	if !relation.EqualAsSets(got, want) {
		t.Fatalf("revenue mismatch:\n%v\nwant\n%v", got, want)
	}
	if got.Tuples[0][0].Str() != "Lucia" || got.Tuples[2][0].Str() != "Pietro" {
		t.Errorf("wrong order: %v", got)
	}
}

func TestRunOnViewQueries(t *testing.T) {
	view, cat := pizzeriaView(t)
	e := New()

	// Q-S: price of each ordered pizza.
	qs := &query.Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"customer", "date", "pizza"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "total"}},
	}
	res, err := e.RunOnView(qs, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 5 {
		t.Fatalf("Q-S rows = %d, want 5\n%v", got.Cardinality(), got)
	}

	// Q-P: revenue per customer.
	qp := &query.Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
	}
	res, err = e.RunOnView(qp, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err = res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	want := relation.MustNew("want", []string{"customer", "revenue"}, []relation.Tuple{
		{sv("Lucia"), iv(9)}, {sv("Mario"), iv(22)}, {sv("Pietro"), iv(9)},
	})
	if !relation.EqualAsSets(got, want) {
		t.Fatalf("Q-P mismatch:\n%v", got)
	}

	// The view itself must be untouched and reusable.
	res2, err := e.RunOnView(qp, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := res2.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(got2, want) {
		t.Fatal("second run on view differs — view was mutated")
	}
}

func TestOrderByAggregate(t *testing.T) {
	view, cat := pizzeriaView(t)
	q := &query.Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
		OrderBy:    []query.OrderItem{{Attr: "revenue", Desc: true}, {Attr: "customer"}},
	}
	res, err := New().RunOnView(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 3 {
		t.Fatalf("rows = %d", got.Cardinality())
	}
	if got.Tuples[0][0].Str() != "Mario" || got.Tuples[0][1].Int() != 22 {
		t.Errorf("first row should be Mario/22: %v", got.Tuples[0])
	}
	// revenue 9 ties: Lucia before Pietro (secondary key customer asc).
	if got.Tuples[1][0].Str() != "Lucia" || got.Tuples[2][0].Str() != "Pietro" {
		t.Errorf("tie order wrong: %v", got.Tuples)
	}
}

func TestOrderByAvgOnly(t *testing.T) {
	view, cat := pizzeriaView(t)
	q := &query.Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"pizza"},
		Aggregates: []query.Aggregate{{Fn: query.Avg, Arg: "price", As: "ap"}},
		OrderBy:    []query.OrderItem{{Attr: "ap"}},
	}
	res, err := New().RunOnView(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	// Capricciosa 8/3 ≈ 2.67 < Hawaii 3 < Margherita 6.
	if got.Tuples[0][0].Str() != "Capricciosa" || got.Tuples[2][0].Str() != "Margherita" {
		t.Errorf("avg order wrong: %v", got.Tuples)
	}
}

func TestHavingAndLimit(t *testing.T) {
	view, cat := pizzeriaView(t)
	q := &query.Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
		Having:     []query.Filter{{Attr: "revenue", Op: fops.LT, Const: iv(10)}},
		OrderBy:    []query.OrderItem{{Attr: "customer"}},
		Limit:      1,
	}
	res, err := New().RunOnView(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 1 || got.Tuples[0][0].Str() != "Lucia" {
		t.Errorf("having+limit wrong: %v", got)
	}
}

func TestSPJOrderOnView(t *testing.T) {
	view, cat := pizzeriaView(t)
	// Order by (customer, pizza, item) requires pushing customer up
	// (Example 2).
	q := &query.Query{
		Relations: []string{"R"},
		OrderBy: []query.OrderItem{
			{Attr: "customer"}, {Attr: "pizza"}, {Attr: "item"},
		},
	}
	res, err := New().RunOnView(q, view, cat)
	if err != nil {
		t.Fatal(err)
	}
	var rows []relation.Tuple
	err = res.ForEach(func(tp relation.Tuple) bool {
		rows = append(rows, tp.Clone())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(rows))
	}
	schema := res.Query.OutputAttrs()
	if len(schema) != 0 {
		t.Fatalf("identity SPJ output attrs should be empty (all): %v", schema)
	}
	// Verify ordering on the three keys via the result's flat schema.
	full, err := res.Relation()
	if err == nil && full != nil {
		t.Log("materialised via Relation() not used for identity query (schema empty)")
	}
	// Check sortedness by locating columns in the enumeration schema.
	en, err := frep.NewEnumerator(res.Factorisation().Tree, res.Factorisation().Roots, nil)
	if err != nil {
		t.Fatal(err)
	}
	sch := en.Schema()
	ci := index(sch, "customer")
	pi := index(sch, "pizza")
	ii := index(sch, "item")
	if ci < 0 || pi < 0 || ii < 0 {
		t.Fatalf("schema %v missing keys", sch)
	}
	for i := 1; i < len(rows); i++ {
		a, b := rows[i-1], rows[i]
		c := values.Compare(a[ci], b[ci])
		if c > 0 {
			t.Fatalf("customer out of order at %d", i)
		}
		if c == 0 {
			cp := values.Compare(a[pi], b[pi])
			if cp > 0 {
				t.Fatalf("pizza out of order at %d", i)
			}
			if cp == 0 && values.Compare(a[ii], b[ii]) > 0 {
				t.Fatalf("item out of order at %d", i)
			}
		}
	}
}

func index(ss []string, s string) int {
	for i, x := range ss {
		if x == s {
			return i
		}
	}
	return -1
}

func TestSPJProjection(t *testing.T) {
	q := &query.Query{
		Relations:  []string{"Orders"},
		Projection: []string{"pizza", "customer"},
		OrderBy:    []query.OrderItem{{Attr: "pizza"}, {Attr: "customer"}},
	}
	res, err := New().Run(q, pizzeriaDB())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 4 {
		t.Fatalf("projection rows = %d, want 4:\n%v", got.Cardinality(), got)
	}
	if got.Attrs[0] != "pizza" || got.Attrs[1] != "customer" {
		t.Errorf("projection schema = %v", got.Attrs)
	}
}

func TestEmptyInputs(t *testing.T) {
	db := DB{"E": relation.MustNew("E", []string{"x", "y"}, nil)}
	// Global aggregate over empty: one row, count 0, sum Null.
	q := &query.Query{
		Relations:  []string{"E"},
		Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}, {Fn: query.Sum, Arg: "y", As: "s"}},
	}
	res, err := New().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 1 || got.Tuples[0][0].Int() != 0 || !got.Tuples[0][1].IsNull() {
		t.Errorf("global aggregate over empty = %v", got)
	}
	// Grouped aggregate over empty: no rows.
	q2 := &query.Query{
		Relations:  []string{"E"},
		GroupBy:    []string{"x"},
		Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
	}
	res, err = New().Run(q2, db)
	if err != nil {
		t.Fatal(err)
	}
	got, err = res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cardinality() != 0 {
		t.Errorf("grouped aggregate over empty = %v", got)
	}
}

func TestDuplicateAttrRejected(t *testing.T) {
	db := DB{
		"A": relation.MustNew("A", []string{"x"}, nil),
		"B": relation.MustNew("B", []string{"x"}, nil),
	}
	q := &query.Query{Relations: []string{"A", "B"}}
	if _, err := New().Run(q, db); err == nil {
		t.Error("duplicate attribute across relations should be rejected")
	}
}

// randomChainDB builds R(a,b), S(b2,c), T(c2,d) with random data.
func randomChainDB(rng *rand.Rand) DB {
	mk := func(name string, attrs []string, n, dom int) *relation.Relation {
		ts := make([]relation.Tuple, n)
		for i := range ts {
			tp := make(relation.Tuple, len(attrs))
			for j := range tp {
				tp[j] = iv(int64(rng.Intn(dom)))
			}
			ts[i] = tp
		}
		return relation.MustNew(name, attrs, ts).Dedup()
	}
	return DB{
		"R": mk("R", []string{"a", "b"}, 1+rng.Intn(20), 4),
		"S": mk("S", []string{"b2", "c"}, 1+rng.Intn(20), 4),
		"T": mk("T", []string{"c2", "d"}, 1+rng.Intn(20), 4),
	}
}

func randomAggQuery(rng *rand.Rand) *query.Query {
	q := &query.Query{
		Relations:  []string{"R", "S", "T"},
		Equalities: []query.Equality{{A: "b", B: "b2"}, {A: "c", B: "c2"}},
	}
	groupPool := []string{"a", "b", "c"}
	for _, g := range groupPool {
		if rng.Intn(2) == 0 {
			q.GroupBy = append(q.GroupBy, g)
		}
	}
	aggPool := []query.Aggregate{
		{Fn: query.Count, As: "n"},
		{Fn: query.Sum, Arg: "d", As: "sd"},
		{Fn: query.Min, Arg: "d", As: "lod"},
		{Fn: query.Max, Arg: "d", As: "hid"},
		{Fn: query.Avg, Arg: "d", As: "md"},
		{Fn: query.Sum, Arg: "a", As: "sa"},
		{Fn: query.Min, Arg: "c", As: "loc"},
	}
	rng.Shuffle(len(aggPool), func(i, j int) { aggPool[i], aggPool[j] = aggPool[j], aggPool[i] })
	n := 1 + rng.Intn(3)
	for _, a := range aggPool[:n] {
		// Aggregating a group-by attribute is out of scope for the
		// on-the-fly path; skip those.
		ok := true
		for _, g := range q.GroupBy {
			if a.Arg == g {
				ok = false
			}
		}
		if ok {
			q.Aggregates = append(q.Aggregates, a)
		}
	}
	if len(q.Aggregates) == 0 {
		q.Aggregates = []query.Aggregate{{Fn: query.Count, As: "n"}}
	}
	if rng.Intn(2) == 0 && len(q.GroupBy) > 0 {
		q.OrderBy = append(q.OrderBy, query.OrderItem{Attr: q.GroupBy[0], Desc: rng.Intn(2) == 0})
	}
	if rng.Intn(3) == 0 {
		q.Filters = append(q.Filters, query.Filter{Attr: "d", Op: fops.LE, Const: iv(int64(rng.Intn(4)))})
	}
	return q
}

// The flagship differential test: FDB (greedy, eager and lazy) agrees
// with RDB on random join-aggregate queries.
func TestDifferentialAgainstRDBProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomChainDB(rng)
		q := randomAggQuery(rng)
		ref, err := rdb.New().Run(q, rdb.DB(db))
		if err != nil {
			t.Logf("seed %d: rdb error: %v", seed, err)
			return false
		}
		for _, eng := range []*Engine{
			{PartialAgg: true},
			{PartialAgg: false},
			{PartialAgg: true, Materialise: len(q.GroupBy) > 0},
		} {
			res, err := eng.Run(q, db)
			if err != nil {
				// The materialised path legitimately refuses multi-subtree
				// aggregates; skip those.
				if eng.Materialise {
					continue
				}
				t.Logf("seed %d: engine error: %v (query %s)", seed, err, q)
				return false
			}
			got, err := res.Relation()
			if err != nil {
				if eng.Materialise {
					continue
				}
				t.Logf("seed %d: enumerate error: %v (query %s)", seed, err, q)
				return false
			}
			if !relation.EqualAsSets(got, ref) {
				t.Logf("seed %d: mismatch for %s\nFDB(partial=%v,mat=%v):\n%v\nRDB:\n%v",
					seed, q, eng.PartialAgg, eng.Materialise, got, ref)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Differential test for SPJ ordering: FDB enumeration order matches RDB's
// sorted output exactly (including full-tuple tie-breaking oracle
// absence: we compare only the order keys).
func TestDifferentialOrderProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := randomChainDB(rng)
		q := &query.Query{
			Relations:  []string{"R", "S", "T"},
			Equalities: []query.Equality{{A: "b", B: "b2"}, {A: "c", B: "c2"}},
			OrderBy: []query.OrderItem{
				{Attr: "d", Desc: rng.Intn(2) == 0},
				{Attr: "a"},
			},
		}
		ref, err := rdb.New().Run(q, rdb.DB(db))
		if err != nil {
			return false
		}
		res, err := New().Run(q, db)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		got, err := res.Factorisation().Flatten()
		if err != nil {
			return false
		}
		if !relation.EqualAsSets(got, ref.Dedup()) {
			t.Logf("seed %d: set mismatch", seed)
			return false
		}
		// Check enumeration order on the keys.
		var rows []relation.Tuple
		if err := res.ForEach(func(tp relation.Tuple) bool {
			rows = append(rows, tp.Clone())
			return true
		}); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		en, err := frep.NewEnumerator(res.Factorisation().Tree, res.Factorisation().Roots, nil)
		if err != nil {
			return false
		}
		di := index(en.Schema(), "d")
		ai := index(en.Schema(), "a")
		for i := 1; i < len(rows); i++ {
			c := values.Compare(rows[i-1][di], rows[i][di])
			if q.OrderBy[0].Desc {
				c = -c
			}
			if c > 0 {
				t.Logf("seed %d: key 1 out of order", seed)
				return false
			}
			if c == 0 && values.Compare(rows[i-1][ai], rows[i][ai]) > 0 {
				t.Logf("seed %d: key 2 out of order", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
