package engine

// Golden DML suite: after an interleaving of INSERT/DELETE/UPSERT
// against the workload dataset, every query family — flat Q1–Q5 across
// Run/ExecShared, serial and parallel, and the view queries Q1–Q13 over
// factorisations built from the mutated relations — must produce results
// identical to a from-scratch rebuild of the same data.

import (
	"fmt"
	"path/filepath"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
	"github.com/factordb/fdb/internal/workload"
)

// mirror is a plain tuple-set model of the mutation semantics, kept
// independent from the engine implementation under test.
type mirror map[string][]relation.Tuple

func (mi mirror) contains(rel string, tp relation.Tuple) bool {
	for _, ex := range mi[rel] {
		if relation.Compare(ex, tp) == 0 {
			return true
		}
	}
	return false
}

func (mi mirror) insert(rel string, rows ...[]values.Value) {
	for _, r := range rows {
		if !mi.contains(rel, relation.Tuple(r)) {
			mi[rel] = append(mi[rel], relation.Tuple(r))
		}
	}
}

func (mi mirror) delete(rel string, keep func(relation.Tuple) bool) {
	var kept []relation.Tuple
	for _, tp := range mi[rel] {
		if keep(tp) {
			kept = append(kept, tp)
		}
	}
	mi[rel] = kept
}

func (mi mirror) upsert(rel string, rows ...[]values.Value) {
	for _, r := range rows {
		key := r[0]
		mi.delete(rel, func(tp relation.Tuple) bool { return values.Compare(tp[0], key) != 0 })
		mi.insert(rel, r)
	}
}

func (mi mirror) db(attrs map[string][]string) DB {
	out := make(DB, len(mi))
	for name, tuples := range mi {
		out[name] = relation.MustNew(name, attrs[name], append([]relation.Tuple{}, tuples...))
	}
	return out
}

func TestGoldenDMLInterleaving(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	m, err := CreateMutable(filepath.Join(t.TempDir(), "cat"), "workload", DB(ds.DB()))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	mi := mirror{}
	attrs := map[string][]string{}
	for name, rel := range ds.DB() {
		mi[name] = append([]relation.Tuple{}, rel.Tuples...)
		attrs[name] = rel.Attrs
	}

	// The interleaving: each step applies to the catalogue and the mirror.
	step := func(mut *query.Mutation, model func()) {
		t.Helper()
		apply(t, m, mut)
		model()
	}
	newOrders := [][]values.Value{
		{iv(1000), iv(1), iv(0)},
		{iv(1000), iv(2), iv(1)},
		{iv(1001), iv(1), iv(2)},
		{iv(1002), iv(3), iv(3)},
	}
	step(ins("Orders", newOrders...), func() { mi.insert("Orders", newOrders...) })

	step(&query.Mutation{Op: query.OpDelete, Relation: "Orders", Where: []query.Filter{
		{Attr: "package", Op: fops.EQ, Const: iv(0)},
	}}, func() {
		mi.delete("Orders", func(tp relation.Tuple) bool { return tp[2].Int() != 0 })
	})

	reprice := [][]values.Value{{iv(0), iv(50)}, {iv(1), iv(50)}, {iv(200), iv(7)}}
	step(&query.Mutation{Op: query.OpUpsert, Relation: "Items", Rows: reprice},
		func() { mi.upsert("Items", reprice...) })

	newPkg := [][]values.Value{{iv(1), iv(200)}, {iv(2), iv(200)}}
	step(ins("Packages", newPkg...), func() { mi.insert("Packages", newPkg...) })

	step(&query.Mutation{Op: query.OpDelete, Relation: "Items", Where: []query.Filter{
		{Attr: "price", Op: fops.GE, Const: iv(18)},
	}}, func() {
		mi.delete("Items", func(tp relation.Tuple) bool { return tp[1].Int() < 18 })
	})

	moreOrders := [][]values.Value{{iv(1003), iv(4), iv(1)}, {iv(1000), iv(1), iv(0)}}
	step(ins("Orders", moreOrders...), func() { mi.insert("Orders", moreOrders...) })

	// 1. The view must match the mirror, flat and factorised.
	want := mi.db(attrs)
	diffViews(t, m, want)
	view := m.View()

	// 2. Flat queries: every execution path over the mutated view must
	// equal the arena path over a from-scratch clone of the same data.
	ref := cloneDB(view)
	refEng := New()
	for i := 1; i <= 5; i++ {
		q, err := workload.FlatAggQuery(i)
		if err != nil {
			t.Fatal(err)
		}
		base := collectRows(t, func() (*Result, error) { return refEng.Run(q, ref) })

		runs := map[string]func() (*Result, error){
			"arena": func() (*Result, error) { q, _ := workload.FlatAggQuery(i); return New().Run(q, view) },
			"legacy": func() (*Result, error) {
				q, _ := workload.FlatAggQuery(i)
				return (&Engine{PartialAgg: true, Legacy: true}).Run(q, view)
			},
			"par2": func() (*Result, error) {
				q, _ := workload.FlatAggQuery(i)
				e := New()
				e.Parallelism = 2
				return e.Run(q, view)
			},
			"par8": func() (*Result, error) {
				q, _ := workload.FlatAggQuery(i)
				e := New()
				e.Parallelism = 8
				return e.Run(q, view)
			},
			"execshared": func() (*Result, error) {
				q, _ := workload.FlatAggQuery(i)
				prep, err := New().Prepare(q, view)
				if err != nil {
					return nil, err
				}
				return prep.ExecShared(view)
			},
		}
		for name, run := range runs {
			got := collectRows(t, run)
			diffOrdered(t, fmt.Sprintf("flat-Q%d/%s", i, name), base, got)
		}
	}

	// 3. View queries Q1–Q13: factorise R1/R3 from the mutated relations
	// and from the clone; all results must agree.
	mds := &workload.Dataset{Scale: 1, Orders: view["Orders"], Packages: view["Packages"], Items: view["Items"]}
	rds := &workload.Dataset{Scale: 1, Orders: ref["Orders"], Packages: ref["Packages"], Items: ref["Items"]}
	cat := mds.Catalog()
	mr1, err := mds.FactorisedR1Arena()
	if err != nil {
		t.Fatal(err)
	}
	rr1, err := rds.FactorisedR1Arena()
	if err != nil {
		t.Fatal(err)
	}
	mr3, err := mds.FactorisedR3Arena()
	if err != nil {
		t.Fatal(err)
	}
	rr3, err := rds.FactorisedR3Arena()
	if err != nil {
		t.Fatal(err)
	}
	type tc struct {
		name        string
		mk          func() *query.Query
		view, rview *fops.ARel
	}
	var cases []tc
	for i := 1; i <= 5; i++ {
		i := i
		cases = append(cases, tc{
			name: fmt.Sprintf("Q%d", i),
			mk: func() *query.Query {
				q, err := workload.AggQuery(i)
				if err != nil {
					t.Fatal(err)
				}
				return q
			},
			view: mr1, rview: rr1,
		})
	}
	cases = append(cases,
		tc{name: "Q6", mk: workload.Q6, view: mr1, rview: rr1},
		tc{name: "Q7", mk: workload.Q7, view: mr1, rview: rr1},
		tc{name: "Q8", mk: workload.Q8, view: mr1, rview: rr1},
		tc{name: "Q9", mk: workload.Q9, view: mr1, rview: rr1},
		tc{name: "Q10", mk: func() *query.Query { return workload.Q10(10) }, view: mr1, rview: rr1},
		tc{name: "Q11", mk: func() *query.Query { return workload.Q11(10) }, view: mr1, rview: rr1},
		tc{name: "Q12", mk: func() *query.Query { return workload.Q12(10) }, view: mr1, rview: rr1},
		tc{name: "Q13", mk: func() *query.Query { return workload.Q13(10) }, view: mr3, rview: rr3},
	)
	eng := New()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := collectRows(t, func() (*Result, error) { return eng.RunOnARel(c.mk(), c.view, cat) })
			wantR := collectRows(t, func() (*Result, error) { return eng.RunOnARel(c.mk(), c.rview, cat) })
			diffOrdered(t, c.name, wantR, got)
		})
	}
}
