package engine

// OFFSET boundary goldens (satellite of the parallel-execution PR): an
// OFFSET at, or past, the end of the result must yield an empty result
// with rowCount 0 — not an error and not a stuck cursor — on every
// enumeration path (flat, grouped, agg-ordered, view) and at every
// parallelism level, matching the rdb baseline's slice semantics.

import (
	"context"
	"fmt"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/rdb"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// offsetDB builds a small two-attribute relation shared by the engine
// and the rdb baseline.
func offsetDB(t *testing.T, rows int) (DB, rdb.DB) {
	t.Helper()
	ts := make([]relation.Tuple, rows)
	for i := range ts {
		ts[i] = relation.Tuple{
			values.NewInt(int64(i)),
			values.NewInt(int64(i % 7)),
		}
	}
	rel, err := relation.New("Big", []string{"k", "v"}, ts)
	if err != nil {
		t.Fatal(err)
	}
	return DB{"Big": rel}, rdb.DB{"Big": rel}
}

// TestOffsetPastEndGolden sweeps offsets across and past the result
// size on the flat, grouped and agg-ordered paths, diffing against the
// rdb baseline row for row.
func TestOffsetPastEndGolden(t *testing.T) {
	const rows = 50
	db, flat := offsetDB(t, rows)
	cases := []struct {
		name   string
		groups int
		mk     func(offset, limit int) *query.Query
	}{
		{"flat-ordered", rows, func(offset, limit int) *query.Query {
			return &query.Query{
				Relations: []string{"Big"},
				OrderBy:   []query.OrderItem{{Attr: "k"}},
				Offset:    offset, Limit: limit,
			}
		}},
		{"grouped", 7, func(offset, limit int) *query.Query {
			return &query.Query{
				Relations:  []string{"Big"},
				GroupBy:    []string{"v"},
				Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
				OrderBy:    []query.OrderItem{{Attr: "v"}},
				Offset:     offset, Limit: limit,
			}
		}},
		{"agg-ordered", 7, func(offset, limit int) *query.Query {
			return &query.Query{
				Relations:  []string{"Big"},
				GroupBy:    []string{"v"},
				Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "k", As: "s"}},
				OrderBy:    []query.OrderItem{{Attr: "s", Desc: true}},
				Offset:     offset, Limit: limit,
			}
		}},
	}
	for _, par := range []int{1, 4} {
		eng := &Engine{PartialAgg: true, Parallelism: par}
		for _, c := range cases {
			offsets := []int{0, c.groups - 1, c.groups, c.groups + 1, c.groups * 10, 1 << 20}
			for _, off := range offsets {
				for _, limit := range []int{0, 3} {
					name := fmt.Sprintf("P=%d/%s/offset=%d/limit=%d", par, c.name, off, limit)
					want, err := (&rdb.Engine{}).Run(c.mk(off, limit), flat)
					if err != nil {
						t.Fatalf("%s: rdb: %v", name, err)
					}
					got := collectRows(t, func() (*Result, error) { return eng.Run(c.mk(off, limit), db) })
					diffOrdered(t, name, want, got)
					if off >= c.groups && len(got.Tuples) != 0 {
						t.Fatalf("%s: offset past end yielded %d rows, want 0", name, len(got.Tuples))
					}
				}
			}
		}
	}
}

// TestOffsetPastEndCursorNotStuck drives the cursor API directly with
// an offset past the end: Next must return false immediately with a
// nil Err, and repeated Next calls must stay false (no stuck cursor).
func TestOffsetPastEndCursorNotStuck(t *testing.T) {
	db, _ := offsetDB(t, 50)
	eng := New()
	q := &query.Query{
		Relations: []string{"Big"},
		OrderBy:   []query.OrderItem{{Attr: "k"}},
		Offset:    1000,
	}
	res, err := eng.Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	rows, err := res.Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	for i := 0; i < 3; i++ {
		if rows.Next() {
			t.Fatalf("Next() = true on offset past end (call %d)", i)
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil", err)
	}
	// Count through the materialising path as well.
	n, err := res.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("Count = %d, want 0", n)
	}
}

// TestOffsetPastEndView covers the view path (RunOnARel) including a
// skip that spans the grouped enumerator's global-group case.
func TestOffsetPastEndView(t *testing.T) {
	db, _ := offsetDB(t, 50)
	f := ftree.New()
	f.NewRelationPath("k", "v")
	view, err := fops.FromRelationStore(frep.NewStore(), db["Big"], f)
	if err != nil {
		t.Fatal(err)
	}
	cat := []ftree.CatalogRelation{{Name: "Big", Attrs: []string{"k", "v"}, Size: 50}}
	eng := New()
	for _, q := range []*query.Query{
		{Relations: []string{"Big"}, OrderBy: []query.OrderItem{{Attr: "k"}}, Offset: 100},
		{Relations: []string{"Big"}, Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "v", As: "s"}}, Offset: 5},
	} {
		res, err := eng.RunOnARel(q, view, cat)
		if err != nil {
			t.Fatal(err)
		}
		n, err := res.Count()
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if n != 0 {
			t.Fatalf("%s: Count = %d, want 0", q, n)
		}
		res.Close()
	}
}
