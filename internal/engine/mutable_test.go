package engine

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/sql"
	"github.com/factordb/fdb/internal/values"
)

// newTestMutable creates a mutable catalogue over the pizzeria database
// in a fresh temp directory.
func newTestMutable(t *testing.T) *MutableCatalog {
	t.Helper()
	m, err := CreateMutable(filepath.Join(t.TempDir(), "cat"), "pizzeria", pizzeriaDB())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

// sortedTuples returns a relation's tuples in canonical order.
func sortedTuples(r *relation.Relation) []relation.Tuple {
	out := append([]relation.Tuple{}, r.Tuples...)
	sort.Slice(out, func(i, j int) bool { return relation.Compare(out[i], out[j]) < 0 })
	return out
}

// diffRelations asserts two relations hold the same tuple set.
func diffRelations(t *testing.T, name string, got, want *relation.Relation) {
	t.Helper()
	g, w := sortedTuples(got), sortedTuples(want)
	if len(g) != len(w) {
		t.Fatalf("%s: %d tuples, want %d", name, len(g), len(w))
	}
	for i := range g {
		if relation.Compare(g[i], w[i]) != 0 {
			t.Fatalf("%s: tuple %d is %v, want %v", name, i, g[i], w[i])
		}
	}
}

// diffViews asserts the mutable catalogue's view matches a reference
// database both as flat relations and as registered factorisations
// (each published fact must structurally equal a from-scratch build).
func diffViews(t *testing.T, m *MutableCatalog, want DB) {
	t.Helper()
	view := m.View()
	if len(view) != len(want) {
		t.Fatalf("view has %d relations, want %d", len(view), len(want))
	}
	for name, wrel := range want {
		vrel, ok := view[name]
		if !ok {
			t.Fatalf("view is missing %s", name)
		}
		diffRelations(t, name, vrel, wrel)
		fact := factFor(vrel, vrel.Attrs)
		if fact == nil {
			t.Fatalf("%s: no registered factorisation for the view relation", name)
		}
		ref := frep.NewStore()
		f := ftree.New()
		f.NewRelationPath(vrel.Attrs...)
		roots, err := frep.BuildStoreUnchecked(ref, vrel, f)
		if err != nil {
			t.Fatal(err)
		}
		if !frep.EqualStore(fact.Store, fact.Root, ref, roots[0]) {
			t.Fatalf("%s: published factorisation differs from a from-scratch build", name)
		}
	}
}

func apply(t *testing.T, m *MutableCatalog, mut *query.Mutation) int64 {
	t.Helper()
	n, err := m.Apply(context.Background(), mut)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func ins(rel string, rows ...[]values.Value) *query.Mutation {
	return &query.Mutation{Op: query.OpInsert, Relation: rel, Rows: rows}
}

func TestMutableInsert(t *testing.T) {
	m := newTestMutable(t)
	n := apply(t, m, ins("Orders",
		[]values.Value{sv("Anna"), sv("Sunday"), sv("Margherita")},
		[]values.Value{sv("Anna"), sv("Sunday"), sv("Hawaii")},
	))
	if n != 2 {
		t.Fatalf("insert affected %d rows, want 2", n)
	}
	want := pizzeriaDB()
	want["Orders"] = relation.MustNew("Orders", want["Orders"].Attrs, append(want["Orders"].Tuples,
		relation.Tuple{sv("Anna"), sv("Sunday"), sv("Margherita")},
		relation.Tuple{sv("Anna"), sv("Sunday"), sv("Hawaii")},
	))
	diffViews(t, m, want)

	// Re-inserting the same rows is a no-op under set semantics.
	if n := apply(t, m, ins("Orders", []values.Value{sv("Anna"), sv("Sunday"), sv("Hawaii")})); n != 0 {
		t.Fatalf("duplicate insert affected %d rows, want 0", n)
	}
	diffViews(t, m, want)
}

func TestMutableDelete(t *testing.T) {
	m := newTestMutable(t)
	n := apply(t, m, &query.Mutation{Op: query.OpDelete, Relation: "Orders", Where: []query.Filter{
		{Attr: "customer", Op: fops.EQ, Const: sv("Mario")},
	}})
	if n != 3 {
		t.Fatalf("delete affected %d rows, want 3", n)
	}
	want := pizzeriaDB()
	var kept []relation.Tuple
	for _, tp := range want["Orders"].Tuples {
		if tp[0].Str() != "Mario" {
			kept = append(kept, tp)
		}
	}
	want["Orders"] = relation.MustNew("Orders", want["Orders"].Attrs, kept)
	diffViews(t, m, want)

	// Deleting again matches nothing.
	if n := apply(t, m, &query.Mutation{Op: query.OpDelete, Relation: "Orders", Where: []query.Filter{
		{Attr: "customer", Op: fops.EQ, Const: sv("Mario")},
	}}); n != 0 {
		t.Fatalf("repeat delete affected %d rows, want 0", n)
	}
}

func TestMutableDeleteAllAndReinsert(t *testing.T) {
	m := newTestMutable(t)
	if n := apply(t, m, &query.Mutation{Op: query.OpDelete, Relation: "Items"}); n != 4 {
		t.Fatalf("delete-all affected %d rows, want 4", n)
	}
	want := pizzeriaDB()
	want["Items"] = relation.MustNew("Items", want["Items"].Attrs, nil)
	diffViews(t, m, want)

	apply(t, m, ins("Items", []values.Value{sv("olives"), iv(2)}))
	want["Items"] = relation.MustNew("Items", want["Items"].Attrs, []relation.Tuple{{sv("olives"), iv(2)}})
	diffViews(t, m, want)
}

func TestMutableUpsert(t *testing.T) {
	m := newTestMutable(t)
	// "ham" exists at price 1: the upsert deletes one row, inserts one.
	n := apply(t, m, &query.Mutation{Op: query.OpUpsert, Relation: "Items", Rows: [][]values.Value{
		{sv("ham"), iv(3)},
		{sv("olives"), iv(2)}, // fresh key: plain insert
	}})
	if n != 3 {
		t.Fatalf("upsert affected %d rows, want 3 (1 deleted + 2 inserted)", n)
	}
	want := pizzeriaDB()
	var tuples []relation.Tuple
	for _, tp := range want["Items"].Tuples {
		if tp[0].Str() != "ham" {
			tuples = append(tuples, tp)
		}
	}
	tuples = append(tuples, relation.Tuple{sv("ham"), iv(3)}, relation.Tuple{sv("olives"), iv(2)})
	want["Items"] = relation.MustNew("Items", want["Items"].Attrs, tuples)
	diffViews(t, m, want)
}

func TestMutableErrors(t *testing.T) {
	m := newTestMutable(t)
	ctx := context.Background()
	if _, err := m.Apply(ctx, ins("Nope", []values.Value{iv(1)})); err == nil {
		t.Fatal("insert into unknown relation succeeded")
	}
	if _, err := m.Apply(ctx, ins("Items", []values.Value{iv(1)})); err == nil {
		t.Fatal("arity-mismatched insert succeeded")
	}
	if _, err := m.Apply(ctx, &query.Mutation{Op: query.OpDelete, Relation: "Items", Where: []query.Filter{
		{Attr: "nope", Const: iv(1)},
	}}); err == nil {
		t.Fatal("delete with unknown attribute succeeded")
	}
	if m.Generation() != 0 {
		t.Fatalf("failed mutations bumped the generation to %d", m.Generation())
	}
}

// TestMutableViewZeroTaxUnmutated: relations never written are served as
// the identical base pointers — the delta layer costs unmutated
// catalogues nothing — and an unchanged generation returns the cached
// view map itself.
func TestMutableViewZeroTaxUnmutated(t *testing.T) {
	m := newTestMutable(t)
	v0 := m.View()
	apply(t, m, ins("Orders", []values.Value{sv("Zoe"), sv("Monday"), sv("Hawaii")}))
	v1 := m.View()
	if v1["Pizzas"] != v0["Pizzas"] || v1["Items"] != v0["Items"] {
		t.Fatal("unmutated relations changed pointer identity after a write to Orders")
	}
	if v1["Orders"] == v0["Orders"] {
		t.Fatal("mutated relation kept its pointer")
	}
	if v2 := m.View(); !sameDB(v2, v1) {
		t.Fatal("stable generation returned a different view")
	}
}

func sameDB(a, b DB) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestMutableSQLRoundTrip drives the catalogue end to end through
// ParseStatement, the WAL and a query over the published view.
func TestMutableSQLRoundTrip(t *testing.T) {
	m := newTestMutable(t)
	for _, stmtSQL := range []string{
		`INSERT INTO Orders VALUES ('Anna', 'Sunday', 'Margherita')`,
		`DELETE FROM Orders WHERE customer = 'Pietro'`,
		`UPSERT INTO Items VALUES ('ham', 4)`,
	} {
		stmt, err := sql.ParseStatement(stmtSQL)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Apply(context.Background(), stmt.(*query.Mutation)); err != nil {
			t.Fatalf("%s: %v", stmtSQL, err)
		}
	}
	q := &query.Query{
		Relations:  []string{"Orders", "Pizzas", "Items"},
		Equalities: pizzeriaEqualities(),
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
		OrderBy:    []query.OrderItem{{Attr: "customer"}},
	}
	res, err := New().Run(q, m.View())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Relation()
	res.Close()
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New().Run(q, cloneDB(m.View()))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Relation()
	ref.Close()
	if err != nil {
		t.Fatal(err)
	}
	diffRelations(t, "revenue", got, want)
}

// cloneDB deep-copies a database into fresh relations with no
// registered factorisations, so queries against it take the
// from-scratch build path.
func cloneDB(db DB) DB {
	out := make(DB, len(db))
	for name, rel := range db {
		tuples := append([]relation.Tuple{}, rel.Tuples...)
		out[name] = relation.MustNew(rel.Name, rel.Attrs, tuples)
	}
	return out
}

// TestMutableDurability: close and reopen at every stage; the recovered
// catalogue must match the pre-close state exactly.
func TestMutableDurability(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cat")
	m, err := CreateMutable(dir, "pizzeria", pizzeriaDB())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	muts := []*query.Mutation{
		ins("Orders", []values.Value{sv("Anna"), sv("Sunday"), sv("Margherita")}),
		{Op: query.OpDelete, Relation: "Orders", Where: []query.Filter{{Attr: "customer", Const: sv("Mario")}}},
		{Op: query.OpUpsert, Relation: "Items", Rows: [][]values.Value{{sv("ham"), iv(9)}}},
		ins("Pizzas", []values.Value{sv("Quattro"), sv("artichokes")}),
	}
	for i, mut := range muts {
		if _, err := m.Apply(ctx, mut); err != nil {
			t.Fatal(err)
		}
		gen := m.Generation()
		snapshotDB := cloneDB(m.View())
		if err := m.Close(); err != nil {
			t.Fatal(err)
		}
		m, err = OpenMutable(dir)
		if err != nil {
			t.Fatalf("reopen after mutation %d: %v", i, err)
		}
		if m.Generation() != gen {
			t.Fatalf("reopen after mutation %d: generation %d, want %d", i, m.Generation(), gen)
		}
		diffViews(t, m, snapshotDB)
	}
	m.Close()
}

func TestMutableCompact(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cat")
	m, err := CreateMutable(dir, "pizzeria", pizzeriaDB())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	ctx := context.Background()
	apply(t, m, ins("Orders", []values.Value{sv("Anna"), sv("Sunday"), sv("Margherita")}))
	apply(t, m, &query.Mutation{Op: query.OpDelete, Relation: "Items", Where: []query.Filter{{Attr: "item2", Const: sv("pineapple")}}})
	want := cloneDB(m.View())

	if err := m.Compact(ctx); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Compactions != 1 || st.WALEpoch != 2 || st.WALRecords != 0 {
		t.Fatalf("after compact: %+v", st)
	}
	if st.DeltaRows != 0 || st.TombstoneRows != 0 {
		t.Fatalf("compaction left deltas: %+v", st)
	}
	diffViews(t, m, want)

	// Writes after compaction land in the new epoch and survive reopen.
	apply(t, m, ins("Orders", []values.Value{sv("Ben"), sv("Monday"), sv("Hawaii")}))
	want["Orders"] = relation.MustNew("Orders", want["Orders"].Attrs,
		append(want["Orders"].Tuples, relation.Tuple{sv("Ben"), sv("Monday"), sv("Hawaii")}))
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenMutable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	diffViews(t, m2, want)
}

// TestMutableCompactCancelled: a compaction cancelled mid-flight leaves
// the catalogue consistent (old snapshot authoritative, both WAL
// segments replayed on reopen) and still writable.
func TestMutableCompactCancelled(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cat")
	m, err := CreateMutable(dir, "pizzeria", pizzeriaDB())
	if err != nil {
		t.Fatal(err)
	}
	apply(t, m, ins("Orders", []values.Value{sv("Anna"), sv("Sunday"), sv("Margherita")}))

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the compactor checks ctx after sealing and aborts the rewrite
	if err := m.Compact(ctx); err == nil {
		t.Fatal("cancelled compaction succeeded")
	}
	if st := m.Stats(); st.Compactions != 0 {
		t.Fatalf("cancelled compaction counted: %+v", st)
	}
	// Still writable, and everything — including writes into the fresh
	// segment after the aborted seal — survives a reopen.
	apply(t, m, ins("Orders", []values.Value{sv("Ben"), sv("Monday"), sv("Hawaii")}))
	want := cloneDB(m.View())
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	m2, err := OpenMutable(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	diffViews(t, m2, want)

	// A full compaction still works afterwards.
	if err := m2.Compact(context.Background()); err != nil {
		t.Fatal(err)
	}
	diffViews(t, m2, want)
}

// TestMutableConcurrentWritersAndReaders is the race suite: writers
// stream inserts while readers drain parallel cursors at P ∈ {2, 8}
// from whatever view is current. Run with -race in CI.
func TestMutableConcurrentWritersAndReaders(t *testing.T) {
	m := newTestMutable(t)
	ctx := context.Background()
	q := &query.Query{
		Relations:  []string{"Orders", "Pizzas", "Items"},
		Equalities: pizzeriaEqualities(),
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
		OrderBy:    []query.OrderItem{{Attr: "customer"}},
	}
	const writers, rounds, readers = 2, 25, 4
	var wg sync.WaitGroup
	errc := make(chan error, writers+readers+1)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				mut := ins("Orders", []values.Value{
					sv(fmt.Sprintf("writer%d-%d", w, i)), sv("Sunday"), sv("Hawaii"),
				})
				if _, err := m.Apply(ctx, mut); err != nil {
					errc <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			eng := New()
			eng.Parallelism = []int{2, 8}[r%2]
			for i := 0; i < rounds; i++ {
				res, err := eng.RunContext(ctx, q, m.View())
				if err != nil {
					errc <- err
					return
				}
				rows, err := res.Rows(ctx)
				if err != nil {
					res.Close()
					errc <- err
					return
				}
				for rows.Next() {
				}
				err = rows.Err()
				rows.Close()
				res.Close()
				if err != nil {
					errc <- err
					return
				}
			}
		}(r)
	}
	// One compaction mid-flight for good measure.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.Compact(ctx); err != nil && err != ErrCompactionRunning {
			errc <- err
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// All acknowledged writes must be present.
	view := m.View()
	count := 0
	for _, tp := range view["Orders"].Tuples {
		var s string
		if tp[0].Kind() == values.String {
			s = tp[0].Str()
		}
		if len(s) > 6 && s[:6] == "writer" {
			count++
		}
	}
	if count != writers*rounds {
		t.Fatalf("view holds %d writer rows, want %d", count, writers*rounds)
	}
}

// TestWALCodecRoundTrip: every mutation shape must encode and decode to
// an equivalent statement.
func TestWALCodecRoundTrip(t *testing.T) {
	muts := []*query.Mutation{
		ins("Orders", []values.Value{sv("Anna"), iv(3), values.NewFloat(2.5)}),
		ins("R", []values.Value{values.NullValue()}, []values.Value{values.NewBool(true)}),
		{Op: query.OpDelete, Relation: "Orders"},
		{Op: query.OpDelete, Relation: "Orders", Where: []query.Filter{
			{Attr: "customer", Const: sv("Mario")},
			{Attr: "price", Op: fops.GT, Const: iv(10)},
		}},
		{Op: query.OpUpsert, Relation: "Items", Rows: [][]values.Value{{sv("ham"), iv(3)}}},
	}
	for _, m := range muts {
		b, err := encodeMutation(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeMutation(b)
		if err != nil {
			t.Fatalf("decode %s: %v", m, err)
		}
		if got.String() != m.String() {
			t.Fatalf("round trip: %q != %q", got, m)
		}
	}
}
