package engine

// Golden equivalence suite for ranked direct access: every workload
// query (Q1–Q13 over the materialised views, flat Q1–Q5 over the base
// relations) runs with OFFSET at the boundaries the issue pins — 0, 1,
// deep inside the stream, and past the end — and the output must be
// byte-identical between the linear-skip path (unranked store, serial)
// and the ranked-seek path at every parallelism level, on Run/RunOnARel
// and on the shared-snapshot execution path. Bare COUNT(*) answered
// from the ranked index must match the enumerated count on every
// workload relation, and TotalCount must equal the pre-OFFSET stream
// length.

import (
	"fmt"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
	"github.com/factordb/fdb/internal/workload"
)

// seekOffsetsUnderTest are the OFFSET boundaries pinned by the suite:
// first page, one-off, deep inside typical results, and far past the
// end of every scale-1 stream.
var seekOffsetsUnderTest = []int{0, 1, 2500, 1 << 20}

// rankedViewCases enumerates the workload's view queries with their
// arena views.
func rankedViewCases(t *testing.T, r1a, r3a *fops.ARel) []struct {
	name  string
	mk    func(off, lim int) *query.Query
	aview *fops.ARel
} {
	t.Helper()
	type tc = struct {
		name  string
		mk    func(off, lim int) *query.Query
		aview *fops.ARel
	}
	with := func(mk func() *query.Query) func(off, lim int) *query.Query {
		return func(off, lim int) *query.Query {
			q := mk()
			q.Offset, q.Limit = off, lim
			return q
		}
	}
	var cases []tc
	for i := 1; i <= 5; i++ {
		i := i
		cases = append(cases, tc{fmt.Sprintf("Q%d", i), with(func() *query.Query {
			q, err := workload.AggQuery(i)
			if err != nil {
				t.Fatal(err)
			}
			return q
		}), r1a})
	}
	cases = append(cases,
		tc{"Q6", with(workload.Q6), r1a},
		tc{"Q7", with(workload.Q7), r1a},
		tc{"Q8", with(workload.Q8), r1a},
		tc{"Q9", with(workload.Q9), r1a},
		tc{"Q10", with(func() *query.Query { return workload.Q10(0) }), r1a},
		tc{"Q11", with(func() *query.Query { return workload.Q11(0) }), r1a},
		tc{"Q12", with(func() *query.Query { return workload.Q12(0) }), r1a},
		tc{"Q13", with(func() *query.Query { return workload.Q13(0) }), r3a},
	)
	return cases
}

// TestGoldenRankedSeekViewQueries: the unranked serial run of every
// view query × offset is the baseline; after BuildRanks on the view
// stores, the ranked runs at P ∈ {1, 2, 8} must reproduce it row for
// row.
func TestGoldenRankedSeekViewQueries(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	cat := ds.Catalog()
	r1a, err := ds.FactorisedR1Arena()
	if err != nil {
		t.Fatal(err)
	}
	r3a, err := ds.FactorisedR3Arena()
	if err != nil {
		t.Fatal(err)
	}
	// Force parallel fan-out at this scale so P > 1 really exercises the
	// segmented merge.
	oldEnum, oldFan := MinParallelEnumRows, MaxEnumFanout
	MinParallelEnumRows = 16
	MaxEnumFanout = 64
	defer func() { MinParallelEnumRows, MaxEnumFanout = oldEnum, oldFan }()

	cases := rankedViewCases(t, r1a, r3a)
	const limit = 7

	serial := &Engine{PartialAgg: true, Parallelism: 1}
	baseline := map[string]*relation.Relation{}
	for _, c := range cases {
		for _, off := range seekOffsetsUnderTest {
			c, off := c, off
			baseline[fmt.Sprintf("%s/offset=%d", c.name, off)] = collectRows(t, func() (*Result, error) {
				return serial.RunOnARel(c.mk(off, limit), c.aview, cat)
			})
		}
	}

	if err := r1a.Store.BuildRanks(); err != nil {
		t.Fatal(err)
	}
	if err := r3a.Store.BuildRanks(); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		eng := &Engine{PartialAgg: true, Parallelism: par}
		for _, c := range cases {
			for _, off := range seekOffsetsUnderTest {
				c, off := c, off
				name := fmt.Sprintf("P=%d/%s/offset=%d", par, c.name, off)
				got := collectRows(t, func() (*Result, error) {
					return eng.RunOnARel(c.mk(off, limit), c.aview, cat)
				})
				diffOrdered(t, name, baseline[fmt.Sprintf("%s/offset=%d", c.name, off)], got)
			}
		}
	}
}

// TestGoldenRankedSeekFlatQueries: flat Q1–Q5 (joins included) with
// OFFSET boundaries, comparing plain Exec (unranked pooled build, linear
// skip) against ExecShared (ranked shared snapshot, seek route) at
// P ∈ {1, 2, 8}.
func TestGoldenRankedSeekFlatQueries(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	db := DB(ds.DB())
	oldEnum, oldFan := MinParallelEnumRows, MaxEnumFanout
	MinParallelEnumRows = 16
	MaxEnumFanout = 64
	defer func() { MinParallelEnumRows, MaxEnumFanout = oldEnum, oldFan }()
	for _, par := range []int{1, 2, 8} {
		eng := &Engine{PartialAgg: true, Parallelism: par}
		for i := 1; i <= 5; i++ {
			for _, off := range seekOffsetsUnderTest {
				q1, err := workload.FlatAggQuery(i)
				if err != nil {
					t.Fatal(err)
				}
				q1.Offset, q1.Limit = off, 7
				q2, _ := workload.FlatAggQuery(i)
				q2.Offset, q2.Limit = off, 7
				prep, err := eng.Prepare(q1, db)
				if err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("P=%d/flat-Q%d/offset=%d", par, i, off)
				base := collectRows(t, func() (*Result, error) { return prep.Exec(db) })
				prep2, err := eng.Prepare(q2, db)
				if err != nil {
					t.Fatal(err)
				}
				shared := collectRows(t, func() (*Result, error) { return prep2.ExecShared(db) })
				diffOrdered(t, name, base, shared)
			}
		}
	}
}

// TestGoldenCountStarViaRanks: a bare COUNT(*) on the ranked
// shared-snapshot path must take the fast path (no plan execution) and
// agree with the enumerated count — the relation's cardinality — for
// every workload relation, and with the unranked path's answer.
func TestGoldenCountStarViaRanks(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	db := DB(ds.DB())
	eng := New()
	countOf := func(t *testing.T, res *Result, err error, wantFast bool) int64 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		defer res.Close()
		if wantFast && res.fastCount == nil {
			t.Fatal("ranked COUNT(*) did not take the fast path")
		}
		rel, err := res.Relation()
		if err != nil {
			t.Fatal(err)
		}
		if len(rel.Tuples) != 1 || len(rel.Tuples[0]) != 1 {
			t.Fatalf("COUNT(*) yielded %d rows", len(rel.Tuples))
		}
		return rel.Tuples[0][0].Int()
	}
	for name, rel := range db {
		q := &query.Query{
			Relations:  []string{name},
			Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
		}
		prep, err := eng.Prepare(q, db)
		if err != nil {
			t.Fatal(err)
		}
		res, err := prep.ExecShared(db)
		got := countOf(t, res, err, true)
		if want := int64(rel.Cardinality()); got != want {
			t.Fatalf("%s: ranked COUNT(*) = %d, want cardinality %d", name, got, want)
		}
		res2, err2 := prep.Exec(db)
		if slow := countOf(t, res2, err2, false); slow != got {
			t.Fatalf("%s: Exec COUNT(*) = %d, ExecShared = %d", name, slow, got)
		}
	}
	// A relation product: the fast path multiplies root counts.
	names := make([]string, 0, len(db))
	card := int64(1)
	for name, rel := range db {
		names = append(names, name)
		card *= int64(rel.Cardinality())
		if len(names) == 2 {
			break
		}
	}
	q := &query.Query{Relations: names, Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}}}
	prep, err := eng.Prepare(q, db)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.ExecShared(db)
	if got := countOf(t, res, err, true); got != card {
		t.Fatalf("product COUNT(*) = %d, want %d", got, card)
	}
}

// TestTotalCountMatchesEnumeration: TotalCount must equal the length of
// the unrestricted stream regardless of the query's OFFSET and LIMIT,
// on flat, grouped and agg-ordered paths.
func TestTotalCountMatchesEnumeration(t *testing.T) {
	db, _ := offsetDB(t, 50)
	eng := New()
	cases := []func(off, lim int) *query.Query{
		func(off, lim int) *query.Query {
			return &query.Query{Relations: []string{"Big"},
				OrderBy: []query.OrderItem{{Attr: "k"}}, Offset: off, Limit: lim}
		},
		func(off, lim int) *query.Query {
			return &query.Query{Relations: []string{"Big"}, GroupBy: []string{"v"},
				Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
				OrderBy:    []query.OrderItem{{Attr: "v"}}, Offset: off, Limit: lim}
		},
		func(off, lim int) *query.Query {
			return &query.Query{Relations: []string{"Big"}, GroupBy: []string{"v"},
				Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "k", As: "s"}},
				OrderBy:    []query.OrderItem{{Attr: "s", Desc: true}}, Offset: off, Limit: lim}
		},
		func(off, lim int) *query.Query {
			return &query.Query{Relations: []string{"Big"}, GroupBy: []string{"v"},
				Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
				Having:     []query.Filter{{Attr: "n", Op: fops.GT, Const: values.NewInt(7)}},
				Offset:     off, Limit: lim}
		},
	}
	for _, mk := range cases {
		q := mk(17, 3)
		want := collectRows(t, func() (*Result, error) { return eng.Run(mk(0, 0), db) })
		res, err := eng.Run(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.TotalCount()
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
		if got != int64(len(want.Tuples)) {
			t.Fatalf("%s: TotalCount = %d, want %d", q, got, len(want.Tuples))
		}
	}
}

// TestSeekOffsetCountersAdvance: applying an OFFSET over a ranked view
// must bump the seek counter; the unranked small-offset path must bump
// the skip counter.
func TestSeekOffsetCountersAdvance(t *testing.T) {
	ds := workload.Generate(workload.Config{Scale: 1})
	cat := ds.Catalog()
	r1a, err := ds.FactorisedR1Arena()
	if err != nil {
		t.Fatal(err)
	}
	q := workload.Q10(5)
	q.Offset = 3

	before := SeekSkipStats()
	res, err := New().RunOnARel(q, r1a, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Count(); err != nil {
		t.Fatal(err)
	}
	res.Close()
	mid := SeekSkipStats()
	if mid.SkipOffsets <= before.SkipOffsets {
		t.Fatalf("unranked small OFFSET did not take the skip route: %+v -> %+v", before, mid)
	}

	if err := r1a.Store.BuildRanks(); err != nil {
		t.Fatal(err)
	}
	res, err = New().RunOnARel(workloadWithOffset(3), r1a, cat)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Count(); err != nil {
		t.Fatal(err)
	}
	res.Close()
	after := SeekSkipStats()
	if after.SeekOffsets <= mid.SeekOffsets {
		t.Fatalf("ranked OFFSET did not take the seek route: %+v -> %+v", mid, after)
	}
}

func workloadWithOffset(off int) *query.Query {
	q := workload.Q10(5)
	q.Offset = off
	return q
}
