package engine

// Kernel golden equivalence: the workload's experimental query set
// (Q1–Q13 on the views, plus the flat-input AGG variants) runs once with
// the vectorised kernels on and once with frep.EnableKernels forced off
// (the scalar path the kernels replaced), at parallelism 1 and 8. The
// outputs must be identical row for row — the kernels' contract is
// byte-identical results, including float aggregation order and Min/Max
// tie-breaking — and the kernel legs must demonstrably engage
// (frep.KernelStats), so a silent fallback cannot pass as equivalence.

import (
	"fmt"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/workload"
)

// withKernels runs fn with frep.EnableKernels pinned to on, restoring
// the previous setting after.
func withKernels(on bool, fn func()) {
	old := frep.EnableKernels
	frep.EnableKernels = on
	defer func() { frep.EnableKernels = old }()
	fn()
}

func TestGoldenKernelVsScalar(t *testing.T) {
	// Drop every fan-out floor so P=8 genuinely exercises the parallel
	// kernel paths (segment workers, overlay stores) at scale 1.
	oldEvalV, oldEvalW := frep.MinParallelEvalValues, frep.MinParallelEvalWork
	oldRebV, oldRebW := fops.MinParallelRebuildValues, fops.MinParallelRebuildWork
	oldEnum, oldGroup, oldFan := MinParallelEnumRows, MinParallelGroupRows, MaxEnumFanout
	frep.MinParallelEvalValues, frep.MinParallelEvalWork = 1, 1
	fops.MinParallelRebuildValues, fops.MinParallelRebuildWork = 1, 1
	MinParallelEnumRows, MinParallelGroupRows, MaxEnumFanout = 1, 1, 64
	defer func() {
		frep.MinParallelEvalValues, frep.MinParallelEvalWork = oldEvalV, oldEvalW
		fops.MinParallelRebuildValues, fops.MinParallelRebuildWork = oldRebV, oldRebW
		MinParallelEnumRows, MinParallelGroupRows, MaxEnumFanout = oldEnum, oldGroup, oldFan
	}()
	frep.KernelStatsEnabled = true
	defer func() { frep.KernelStatsEnabled = false }()

	ds := workload.Generate(workload.Config{Scale: 1})
	cat := ds.Catalog()
	db := DB(ds.DB())
	r1a, err := ds.FactorisedR1Arena()
	if err != nil {
		t.Fatal(err)
	}
	r3a, err := ds.FactorisedR3Arena()
	if err != nil {
		t.Fatal(err)
	}

	type tc struct {
		name string
		mk   func() *query.Query
		view *fops.ARel // nil runs against the flat base relations
	}
	var cases []tc
	for i := 1; i <= 5; i++ {
		i := i
		cases = append(cases, tc{
			name: fmt.Sprintf("flat-Q%d", i),
			mk: func() *query.Query {
				q, err := workload.FlatAggQuery(i)
				if err != nil {
					t.Fatal(err)
				}
				return q
			},
		})
		cases = append(cases, tc{
			name: fmt.Sprintf("Q%d", i),
			mk: func() *query.Query {
				q, err := workload.AggQuery(i)
				if err != nil {
					t.Fatal(err)
				}
				return q
			},
			view: r1a,
		})
	}
	cases = append(cases,
		tc{name: "Q6", mk: workload.Q6, view: r1a},
		tc{name: "Q7", mk: workload.Q7, view: r1a},
		tc{name: "Q8", mk: workload.Q8, view: r1a},
		tc{name: "Q9", mk: workload.Q9, view: r1a},
		tc{name: "Q10", mk: func() *query.Query { return workload.Q10(0) }, view: r1a},
		tc{name: "Q11", mk: func() *query.Query { return workload.Q11(0) }, view: r1a},
		tc{name: "Q12", mk: func() *query.Query { return workload.Q12(0) }, view: r1a},
		tc{name: "Q13", mk: func() *query.Query { return workload.Q13(0) }, view: r3a},
	)

	for _, par := range []int{1, 8} {
		par := par
		t.Run(fmt.Sprintf("P=%d", par), func(t *testing.T) {
			eng := &Engine{PartialAgg: true, Parallelism: par}
			frep.ResetKernelStats()
			for _, c := range cases {
				run := func() (*Result, error) {
					if c.view != nil {
						return eng.RunOnARel(c.mk(), c.view, cat)
					}
					return eng.Run(c.mk(), db)
				}
				var scalar, kernel *relation.Relation
				withKernels(false, func() { scalar = collectRows(t, run) })
				withKernels(true, func() { kernel = collectRows(t, run) })
				diffOrdered(t, fmt.Sprintf("%s/P=%d", c.name, par), scalar, kernel)
			}
			st := frep.ReadKernelStats()
			if st.SelectKernel+st.AggKernel+st.Find+st.Intersect == 0 {
				t.Fatalf("kernels never engaged across the suite at P=%d: %+v", par, st)
			}
			t.Logf("kernel engagement at P=%d: %+v", par, st)
		})
	}
}
