package engine

import (
	"context"
	"testing"
	"time"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// deepPathView builds a relation of fanout³ rows factorised over the
// path a→b→c, optionally ranked — the pagination target of the
// deep-page cost test (cmd/fdbbench's -exp offset measures the same
// shape at full size).
func deepPathView(t *testing.T, fanout int, ranked bool) *fops.ARel {
	t.Helper()
	n := fanout * fanout * fanout
	tuples := make([]relation.Tuple, 0, n)
	for i := 0; i < n; i++ {
		tuples = append(tuples, relation.Tuple{
			values.NewInt(int64(i / (fanout * fanout))),
			values.NewInt(int64((i / fanout) % fanout)),
			values.NewInt(int64(i % fanout)),
		})
	}
	rel, err := relation.New("Deep", []string{"a", "b", "c"}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	s := frep.NewStore()
	roots, err := frep.BuildStoreUnchecked(s, rel, f)
	if err != nil {
		t.Fatal(err)
	}
	ar := &fops.ARel{Tree: f, Store: s, Roots: roots}
	if ranked {
		if err := s.BuildRanks(); err != nil {
			t.Fatal(err)
		}
	}
	return ar
}

// pageCost returns the cheapest observed wall clock of draining one
// LIMIT-10 page at the given OFFSET (min over reps, so scheduler noise
// inflates nothing).
func pageCost(t *testing.T, view *fops.ARel, off, reps int) time.Duration {
	t.Helper()
	eng := &Engine{PartialAgg: true}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		q := &query.Query{Relations: []string{"Deep"}, Offset: off, Limit: 10}
		start := time.Now()
		res, err := eng.RunOnARel(q, view, nil)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := res.Rows(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
		res.Close()
	}
	return best
}

// TestRankedDeepPageNotLinear is the issue's machine-independent
// pagination bound: on a ranked store, a page deep in the stream
// (OFFSET ≥ 10k) must cost no more than 3× the first page — the seek
// descends counts in O(depth × log fanout), so page depth cannot
// surface as a linear term. A generous absolute slack keeps the ratio
// meaningful on noisy CI machines without ever letting a linear-cost
// regression (tens of thousands of odometer steps) slip through.
func TestRankedDeepPageNotLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const fanout = 64 // 262144 rows, so a linear route cannot hide in the slack
	view := deepPathView(t, fanout, true)
	const reps = 15
	page0 := pageCost(t, view, 0, reps)
	deep := pageCost(t, view, 100_000, reps)
	slack := 200 * time.Microsecond
	if deep > 3*page0+slack {
		t.Fatalf("ranked deep page (offset 100000) took %v, page-0 %v: exceeds 3× + %v slack", deep, page0, slack)
	}
}
