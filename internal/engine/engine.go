// Package engine implements the FDB query engine: it compiles queries
// with aggregates, group-by, order-by and limit into f-plans (package
// plan), executes them over factorised data (packages fops/frep), and
// enumerates results with constant delay — flat output ("FDB") or
// factorised output ("FDB f/o") per the paper's experimental setup.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/plan"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
)

// DB is a catalogue of named flat relations.
type DB map[string]*relation.Relation

// Engine evaluates queries over flat relations or factorised views.
type Engine struct {
	// PartialAgg enables eager partial aggregation (on by default via
	// New); disabling it is the lazy-aggregation ablation.
	PartialAgg bool
	// Exhaustive uses the Dijkstra planner instead of the greedy
	// heuristic.
	Exhaustive bool
	// Materialise forces the final aggregate to be materialised as a
	// single attribute even when on-the-fly combination at enumeration
	// time (Example 1, scenario 3) would avoid it.
	Materialise bool
	// Legacy executes queries on the pointer-based *frep.Union
	// representation instead of the arena store. It exists so the two
	// representations can be diffed (the golden equivalence tests) and
	// as an escape hatch during the transition; the arena is the
	// default.
	Legacy bool
	// Parallelism bounds the intra-query parallelism: f-plan operators
	// fan their occurrence loops over contiguous segments of root
	// unions, aggregate evaluations merge per-segment partial results,
	// and the enumeration cursors drain per-segment workers in root
	// order — so results are identical to serial execution at any
	// setting. 0 means GOMAXPROCS; 1 disables intra-query parallelism
	// (the pre-parallel behaviour); values apply only to arena
	// execution (Legacy stays serial). Small inputs execute serially
	// regardless (see frep.MinParallelEvalValues and friends).
	Parallelism int
}

// par resolves the engine's effective intra-query parallelism.
func (e *Engine) par() int {
	p := e.Parallelism
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// New returns an engine with the paper's default configuration.
func New() *Engine { return &Engine{PartialAgg: true} }

// Result is an evaluated query: the factorised output plus everything
// needed to enumerate flat tuples in the requested order.
type Result struct {
	Query *query.Query
	// FRel is the pointer-based factorised result ("FDB f/o" output).
	// It is populated when the query executed on the legacy
	// representation (Engine.Legacy, or a RunOnView over a pointer-based
	// view); nil when the arena representation was used — see ARel and
	// Factorisation.
	FRel *fops.FRel
	// ARel is the arena-backed factorised result, populated when the
	// query executed on the arena representation (the default for
	// Exec/Run). For aggregation queries it contains the group-by
	// attributes and (possibly several) partial-aggregate leaves.
	ARel *fops.ARel
	// Plan is the executed f-plan.
	Plan *plan.Plan

	eng *Engine
	// pooled marks an ARel whose store was taken from the engine's
	// store pool; Close returns it.
	pooled bool
	// closed marks a Result whose Close has run: its store may already
	// be recycled into another query, so enumeration APIs refuse with
	// ErrClosed instead of touching freed slabs.
	closed bool
	// closers tracks open parallel cursors; Close joins their segment
	// workers before recycling the store.
	closers []rowCloser
	// fastCount, when set, is the precomputed answer of a bare COUNT(*)
	// query taken from the ranked root counts; enumeration yields this
	// single row and the aggregation plan was never executed.
	fastCount *int64
}

// dropCloser forgets a parallel cursor that has been closed.
func (r *Result) dropCloser(c rowCloser) {
	for i, x := range r.closers {
		if x == c {
			r.closers = append(r.closers[:i], r.closers[i+1:]...)
			return
		}
	}
}

// rel returns the factorised result behind its representation-neutral
// operator surface.
func (r *Result) rel() fops.Rel {
	if r.ARel != nil {
		return r.ARel
	}
	return r.FRel
}

// Tree returns the f-tree of the factorised result.
func (r *Result) Tree() *ftree.Forest { return r.rel().Forest() }

// Singletons returns the factorised result's size in singletons.
func (r *Result) Singletons() int { return r.rel().Singletons() }

// Factorisation returns the pointer-based view of the factorised result,
// materialising it from the arena when necessary (for APIs that still
// speak *frep.Union, such as view serialisation).
func (r *Result) Factorisation() *fops.FRel {
	if r.FRel != nil {
		return r.FRel
	}
	return r.ARel.ToFRel()
}

// Close releases pooled per-query resources (the arena store backing
// ARel, when it came from the engine's pool). The Result — including
// ARel, open Rows, and anything obtained from rel() — must not be used
// afterwards: enumeration APIs return ErrClosed once Close has run,
// because the recycled store may already back another query. Close is
// idempotent — any call after the first is a no-op — and optional: an
// unclosed Result is reclaimed by the garbage collector like any other
// value; closing merely recycles the slabs for the next query.
func (r *Result) Close() {
	if r.closed {
		return
	}
	r.closed = true
	// Join any parallel cursor workers first: they read the store, which
	// must not be recycled under them.
	for _, c := range r.closers {
		c.close()
	}
	r.closers = nil
	if r.pooled && r.ARel != nil {
		st := r.ARel.Store
		r.ARel = nil
		r.pooled = false
		putStore(st)
	}
}

// Run evaluates the query against flat base relations: each input is
// factorised as a linear path, the product forms the initial forest, and
// the f-plan performs selections, aggregation and restructuring.
//
// The attribute order inside each relation's path changes which
// factorisations the plan passes through (a join attribute buried at the
// bottom of a path forces replication), so Run explores a small set of
// candidate orders per relation — the original order plus one rotation
// per join attribute — and keeps the combination whose plan has the
// lowest size-bound cost (the paper's cost metric, Section 5).
func (e *Engine) Run(q *query.Query, db DB) (*Result, error) {
	return e.RunContext(context.Background(), q, db)
}

// RunContext is Run with cancellation: the context is honoured during
// path-order search, f-plan optimisation and execution, and carries
// into enumeration when the caller uses Result.Rows with the same
// context.
func (e *Engine) RunContext(ctx context.Context, q *query.Query, db DB) (*Result, error) {
	p, err := e.PrepareContext(ctx, q, db)
	if err != nil {
		return nil, err
	}
	return p.ExecContext(ctx, db)
}

// choosePathOrders plans the query over every combination of candidate
// path orders (capped) and returns the attribute orders of the cheapest
// plan. The context is checked between combinations.
func (e *Engine) choosePathOrders(ctx context.Context, q *query.Query, rels []*relation.Relation, cat []ftree.CatalogRelation) ([][]string, error) {
	joinAttr := map[string]bool{}
	for _, eq := range q.Equalities {
		joinAttr[eq.A] = true
		joinAttr[eq.B] = true
	}
	cands := make([][][]string, len(rels))
	combos := 1
	for i, rel := range rels {
		cands[i] = pathCandidates(rel.Attrs, joinAttr)
		combos *= len(cands[i])
	}
	const maxCombos = 64
	if combos > maxCombos {
		// Too many: keep only the first candidate (join attribute first)
		// per relation.
		for i := range cands {
			cands[i] = cands[i][:1]
		}
		combos = 1
	}
	pl := &plan.Planner{Catalog: cat, PartialAgg: e.PartialAgg, Ctx: ctx}
	var best [][]string
	bestCost := 0.0
	idx := make([]int, len(rels))
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		f := ftree.New()
		orders := make([][]string, len(rels))
		for i := range rels {
			orders[i] = cands[i][idx[i]]
			f.NewRelationPath(orders[i]...)
		}
		if fp, err := pl.Plan(f, q); err == nil {
			if best == nil || fp.Cost < bestCost {
				best = orders
				bestCost = fp.Cost
			}
		}
		// Next combination.
		k := 0
		for k < len(idx) {
			idx[k]++
			if idx[k] < len(cands[k]) {
				break
			}
			idx[k] = 0
			k++
		}
		if k == len(idx) {
			break
		}
	}
	if best == nil {
		// A cancellation mid-search surfaces as the context's error, not
		// as a missing plan.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("engine: no executable plan found for %s", q)
	}
	return best, nil
}

// pathCandidates returns candidate linear-path orders for one relation:
// for each join attribute, a rotation with it first (rest in original
// order), then the original order. Duplicates are removed.
func pathCandidates(attrs []string, joinAttr map[string]bool) [][]string {
	var out [][]string
	seen := map[string]bool{}
	add := func(order []string) {
		key := ""
		for _, a := range order {
			key += a + "|"
		}
		if !seen[key] {
			seen[key] = true
			out = append(out, order)
		}
	}
	for _, j := range attrs {
		if !joinAttr[j] {
			continue
		}
		order := make([]string, 0, len(attrs))
		order = append(order, j)
		for _, a := range attrs {
			if a != j {
				order = append(order, a)
			}
		}
		add(order)
	}
	add(append([]string{}, attrs...))
	return out
}

// RunOnView evaluates a query (no joins) against a materialised
// pointer-based factorised view. The view itself is never modified:
// operators build new structure and share untouched subtrees, so
// repeated queries against one view are cheap. cat supplies relation
// sizes for the cost model and may be nil.
func (e *Engine) RunOnView(q *query.Query, view *fops.FRel, cat []ftree.CatalogRelation) (*Result, error) {
	return e.RunOnViewContext(context.Background(), q, view, cat)
}

// RunOnViewContext is RunOnView with cancellation: the context is
// checked between f-plan operators, so a long view query can be
// abandoned mid-execution.
func (e *Engine) RunOnViewContext(ctx context.Context, q *query.Query, view *fops.FRel, cat []ftree.CatalogRelation) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Equalities) > 0 {
		return nil, fmt.Errorf("engine: RunOnView does not support equality selections; materialise them into the view")
	}
	tree, _ := view.Tree.Clone()
	fr := &fops.FRel{Tree: tree, Roots: append([]*frep.Union{}, view.Roots...)}
	return e.execute(ctx, q, fr, cat)
}

// RunOnARel evaluates a query (no joins) against a materialised arena
// view. The view's store is snapshotted in O(1); operators append into
// the private snapshot, so the view is shared untouched across any
// number of concurrent queries.
func (e *Engine) RunOnARel(q *query.Query, view *fops.ARel, cat []ftree.CatalogRelation) (*Result, error) {
	return e.RunOnARelContext(context.Background(), q, view, cat)
}

// RunOnARelContext is RunOnARel with cancellation; see
// RunOnViewContext.
func (e *Engine) RunOnARelContext(ctx context.Context, q *query.Query, view *fops.ARel, cat []ftree.CatalogRelation) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Equalities) > 0 {
		return nil, fmt.Errorf("engine: RunOnARel does not support equality selections; materialise them into the view")
	}
	return e.execute(ctx, q, view.Snapshot(), cat)
}

func (e *Engine) execute(ctx context.Context, q *query.Query, fr fops.Rel, cat []ftree.CatalogRelation) (*Result, error) {
	pl := &plan.Planner{Catalog: cat, PartialAgg: e.PartialAgg, Exhaustive: e.Exhaustive}
	fplan, err := pl.Plan(fr.Forest(), q)
	if err != nil {
		return nil, err
	}
	if ar, ok := fr.(*fops.ARel); ok {
		if n, ok := fastCountValue(q, ar); ok {
			return &Result{Query: q, ARel: ar, Plan: fplan, eng: e, fastCount: &n}, nil
		}
	}
	if err := fplan.ExecuteParallel(ctx, fr, e.par()); err != nil {
		return nil, err
	}
	res := &Result{Query: q, Plan: fplan, eng: e}
	switch v := fr.(type) {
	case *fops.ARel:
		res.ARel = v
		noteParallelExec(v)
	case *fops.FRel:
		res.FRel = v
	}
	return res, nil
}

// orderOnAggregate reports whether some order item references an
// aggregate output rather than a group-by attribute.
func orderOnAggregate(q *query.Query) bool {
	inG := map[string]bool{}
	for _, g := range q.GroupBy {
		inG[g] = true
	}
	for _, o := range q.OrderBy {
		if !inG[o.Attr] {
			return true
		}
	}
	return false
}

// ForEach streams the query's output tuples in the requested order,
// applying HAVING, OFFSET and LIMIT. fn returns false to stop early.
// The output schema is Query.OutputAttrs(). It is a thin wrapper over
// the cursor path (Result.Rows); the tuple passed to fn is reused
// between calls — clone it to retain.
func (r *Result) ForEach(fn func(relation.Tuple) bool) error {
	rows, err := r.Rows(context.Background())
	if err != nil {
		return err
	}
	defer rows.Close()
	for rows.Next() {
		if !fn(rows.Tuple()) {
			return nil
		}
	}
	return rows.Err()
}

// Schema returns the effective output column names: OutputAttrs when the
// query projects or aggregates explicitly, otherwise (SELECT *) the flat
// schema of the factorised result.
func (r *Result) Schema() []string {
	if outs := r.Query.OutputAttrs(); len(outs) > 0 {
		return outs
	}
	return frep.FlatSchema(r.Tree())
}

// Relation materialises the output as a relation (in enumeration order).
func (r *Result) Relation() (*relation.Relation, error) {
	var rows []relation.Tuple
	err := r.ForEach(func(t relation.Tuple) bool {
		rows = append(rows, t.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	return relation.New("result", r.Schema(), rows)
}

// Count streams the output and returns the number of tuples (after HAVING
// and LIMIT); used by benchmarks to force full enumeration.
func (r *Result) Count() (int, error) {
	n := 0
	err := r.ForEach(func(relation.Tuple) bool {
		n++
		return true
	})
	return n, err
}

// Explain renders the executed f-plan, the resulting f-tree and the
// representation size, for EXPLAIN-style output.
func (r *Result) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query:  %s\n", r.Query)
	if len(r.Plan.Ops) == 0 {
		b.WriteString("f-plan: (no operators — the view already supports the query)\n")
	} else {
		fmt.Fprintf(&b, "f-plan: %s\n", r.Plan)
	}
	fmt.Fprintf(&b, "cost:   %.0f (size-bound metric)\n", r.Plan.Cost)
	fmt.Fprintf(&b, "result f-tree:\n%s", indent(r.Tree().String(), "  "))
	fmt.Fprintf(&b, "result size: %d singletons\n", r.Singletons())
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}

func columnIndices(schema, want []string) ([]int, error) {
	idx := make([]int, len(want))
	for i, w := range want {
		idx[i] = -1
		for j, s := range schema {
			if s == w {
				idx[i] = j
				break
			}
		}
		if idx[i] < 0 {
			return nil, fmt.Errorf("engine: output attribute %q not in schema %v", w, schema)
		}
	}
	return idx, nil
}
