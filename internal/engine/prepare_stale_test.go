package engine

// Regression suite for the stale-plan bug: a cached Prepared whose
// ExecShared snapshot was built against one view generation must rebuild
// — not serve stale rows — when re-executed after DML.

import (
	"context"
	"testing"

	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/values"
)

func pizzeriaRevenueQuery() *query.Query {
	return &query.Query{
		Relations:  []string{"Orders", "Pizzas", "Items"},
		Equalities: pizzeriaEqualities(),
		GroupBy:    []string{"customer"},
		Aggregates: []query.Aggregate{{Fn: query.Count, As: "orders"}},
		OrderBy:    []query.OrderItem{{Attr: "customer"}},
	}
}

// TestPreparedSeesRowsInsertedAfterSnapshot: the core regression. The
// shared snapshot is built, a row is inserted, and the same Prepared is
// re-executed against the new view — the new customer must appear.
func TestPreparedSeesRowsInsertedAfterSnapshot(t *testing.T) {
	m := newTestMutable(t)
	q := pizzeriaRevenueQuery()
	prep, err := New().Prepare(q, m.View())
	if err != nil {
		t.Fatal(err)
	}
	before := collectRows(t, func() (*Result, error) { return prep.ExecShared(m.View()) })
	for _, tp := range before.Tuples {
		if tp[0].Str() == "Zoe" {
			t.Fatal("Zoe present before the insert")
		}
	}

	apply(t, m, ins("Orders", []values.Value{sv("Zoe"), sv("Monday"), sv("Hawaii")}))

	after := collectRows(t, func() (*Result, error) { return prep.ExecShared(m.View()) })
	if len(after.Tuples) != len(before.Tuples)+1 {
		t.Fatalf("after insert: %d groups, want %d", len(after.Tuples), len(before.Tuples)+1)
	}
	found := false
	for _, tp := range after.Tuples {
		if tp[0].Str() == "Zoe" {
			found = true
		}
	}
	if !found {
		t.Fatal("cached plan served stale data: inserted customer missing")
	}

	// And the result must equal a fresh Exec of the same view.
	fresh := collectRows(t, func() (*Result, error) { return prep.Exec(m.View()) })
	diffOrdered(t, "shared-vs-fresh", fresh, after)
}

// TestPreparedSeesDeletesAndUpserts: same regression for the other ops.
func TestPreparedSeesDeletesAndUpserts(t *testing.T) {
	m := newTestMutable(t)
	q := pizzeriaRevenueQuery()
	prep, err := New().Prepare(q, m.View())
	if err != nil {
		t.Fatal(err)
	}
	before := collectRows(t, func() (*Result, error) { return prep.ExecShared(m.View()) })

	apply(t, m, &query.Mutation{Op: query.OpDelete, Relation: "Orders", Where: []query.Filter{
		{Attr: "customer", Const: sv("Mario")},
	}})
	after := collectRows(t, func() (*Result, error) { return prep.ExecShared(m.View()) })
	if len(after.Tuples) != len(before.Tuples)-1 {
		t.Fatalf("after delete: %d groups, want %d", len(after.Tuples), len(before.Tuples)-1)
	}
	for _, tp := range after.Tuples {
		if tp[0].Str() == "Mario" {
			t.Fatal("cached plan served a deleted customer")
		}
	}

	apply(t, m, &query.Mutation{Op: query.OpUpsert, Relation: "Items", Rows: [][]values.Value{{sv("ham"), iv(40)}}})
	shared := collectRows(t, func() (*Result, error) { return prep.ExecShared(m.View()) })
	fresh := collectRows(t, func() (*Result, error) { return prep.Exec(m.View()) })
	diffOrdered(t, "post-upsert", fresh, shared)
}

// TestPreparedSharedSnapshotStableWithoutDML: with no writes, repeated
// ExecShared calls keep the cached snapshot (pointer-identity check via
// the rels guard) and agree with Exec.
func TestPreparedSharedSnapshotStableWithoutDML(t *testing.T) {
	m := newTestMutable(t)
	q := pizzeriaRevenueQuery()
	prep, err := New().Prepare(q, m.View())
	if err != nil {
		t.Fatal(err)
	}
	base := collectRows(t, func() (*Result, error) { return prep.Exec(m.View()) })
	for rep := 0; rep < 3; rep++ {
		got := collectRows(t, func() (*Result, error) { return prep.ExecShared(m.View()) })
		diffOrdered(t, "stable", base, got)
	}
}

// TestPreparedConcurrentExecSharedDuringWrites: hammer ExecShared from
// several goroutines while a writer streams inserts; every result must
// be internally consistent (all rows from one published view) and the
// final result must include every write.
func TestPreparedConcurrentExecSharedDuringWrites(t *testing.T) {
	m := newTestMutable(t)
	q := pizzeriaRevenueQuery()
	prep, err := New().Prepare(q, m.View())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			name := sv(string(rune('A'+i)) + "-cust")
			if _, err := m.Apply(ctx, ins("Orders", []values.Value{name, sv("Sunday"), sv("Hawaii")})); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 40; i++ {
		res, err := prep.ExecSharedContext(ctx, m.View())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := res.Relation(); err != nil {
			res.Close()
			t.Fatal(err)
		}
		res.Close()
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	final := collectRows(t, func() (*Result, error) { return prep.ExecShared(m.View()) })
	count := 0
	for _, tp := range final.Tuples {
		s := tp[0].Str()
		if len(s) > 5 && s[1:] == "-cust" {
			count++
		}
	}
	if count != 20 {
		t.Fatalf("final shared exec saw %d inserted customers, want 20", count)
	}
}
