package engine

import (
	"testing"

	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// TestMergePartialAggRow: the distributed merge must agree with serial
// evaluation for every mergeable aggregate, starting from Nulls.
func TestMergePartialAggRow(t *testing.T) {
	aggs := []query.Aggregate{
		{Fn: query.Count},
		{Fn: query.Sum, Arg: "price"},
		{Fn: query.Min, Arg: "price"},
		{Fn: query.Max, Arg: "price"},
	}
	fields, err := PartialFields(aggs)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]values.Value, 4) // all Null: the merge identity
	shards := [][]values.Value{
		{values.NewInt(3), values.NewInt(30), values.NewInt(2), values.NewInt(17)},
		{values.NewInt(2), values.NewInt(12), values.NewInt(5), values.NewInt(9)},
		{values.NewInt(1), values.NewInt(7), values.NewInt(7), values.NewInt(7)},
	}
	for _, src := range shards {
		MergePartialAggRow(fields, dst, src)
	}
	want := []values.Value{values.NewInt(6), values.NewInt(49), values.NewInt(2), values.NewInt(17)}
	for i := range want {
		if !values.Equal(dst[i], want[i]) {
			t.Fatalf("field %d merged to %v, want %v", i, dst[i], want[i])
		}
	}
}

// TestPartialFieldsAvgRejected: Avg must be rewritten before shard rows
// can merge.
func TestPartialFieldsAvgRejected(t *testing.T) {
	if _, err := PartialFields([]query.Aggregate{{Fn: query.Avg, Arg: "price"}}); err == nil {
		t.Fatal("PartialFields accepted avg")
	}
}

// TestFinalizeAvgMatchesEngine: reconstructing avg from sum and count
// partials equals the engine's own composite finalisation on a real
// query.
func TestFinalizeAvgMatchesEngine(t *testing.T) {
	db := DB{"R": relation.MustNew("R", []string{"k", "v"}, []relation.Tuple{
		{iv(1), iv(10)}, {iv(1), iv(15)}, {iv(2), iv(7)},
	})}
	q := &query.Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"k"},
		Aggregates: []query.Aggregate{{Fn: query.Avg, Arg: "v", As: "m"}},
	}
	res, err := New().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	out, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	// Group k=1: sum 25 over 2 rows; k=2: sum 7 over 1 row.
	want := map[int64]values.Value{
		1: FinalizeAvg(values.NewInt(25), values.NewInt(2)),
		2: FinalizeAvg(values.NewInt(7), values.NewInt(1)),
	}
	if len(out.Tuples) != 2 {
		t.Fatalf("got %d groups, want 2", len(out.Tuples))
	}
	for _, tup := range out.Tuples {
		k := tup[0].Int()
		if !values.Equal(tup[1], want[k]) {
			t.Fatalf("group %d: engine avg %v, FinalizeAvg %v", k, tup[1], want[k])
		}
	}
}
