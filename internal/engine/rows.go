package engine

// The cursor layer: every enumeration path of the engine (flat
// projection, on-the-fly grouped aggregation, materialised aggregate
// ordering, and the flat-sort fallback) is expressed as a rowCursor —
// a resumable step-at-a-time producer over the constant-delay
// enumerators of package frep. Rows wraps a rowCursor in the
// database/sql-shaped surface (Next/Scan/Columns/Err/Close) with
// context cancellation, OFFSET skipping and LIMIT accounting, and
// ForEach/Relation/Count are thin wrappers over the same cursors, so
// streaming and materialising callers see byte-identical output.

import (
	"context"
	"errors"
	"fmt"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/plan"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// ErrClosed is returned by Result and Rows methods used after Close:
// the pooled arena store backing the result may already be serving
// another query, so any further access would read recycled slabs.
var ErrClosed = errors.New("engine: result used after Close")

// ctxCheckEvery is how many cursor advances pass between context
// checks: frequent enough that cancelling stops a multi-million-row
// enumeration promptly, rare enough to stay off the per-row hot path.
const ctxCheckEvery = 256

// rowCursor is the step-at-a-time core of one enumeration path. step
// returns the next output row in a buffer reused across calls; ok
// false means exhausted. skip advances past up to n output rows (after
// HAVING, before LIMIT) as cheaply as the path allows, returning how
// many were skipped; fewer than n means the cursor is exhausted.
type rowCursor interface {
	step() (relation.Tuple, bool, error)
	skip(n int) (int, error)
}

// Rows is a streaming, pull-based view of a query result: the
// database/sql-style cursor of the engine. Obtain one with
// Result.Rows; iterate with Next, read with Scan (or Tuple for the raw
// reused buffer), and Close when done. A Rows honours its context —
// Next returns false and Err reports the context's error once it fires
// — and applies the query's OFFSET by skipping inside the enumerator,
// so no skipped prefix is ever materialised.
//
// A Rows is not safe for concurrent use. Closing the Rows does not
// close the Result it came from; closing the Result invalidates the
// Rows (Next returns false, Err reports ErrClosed).
type Rows struct {
	res     *Result
	ctx     context.Context
	cur     rowCursor
	cols    []string
	tuple   relation.Tuple
	err     error
	done    bool
	closed  bool
	toSkip  int
	limit   int
	emitted int
	sinceCk int
}

// Rows returns a streaming cursor over the result in the query's
// requested order, applying HAVING, OFFSET and LIMIT. The context
// governs the enumeration: cancel it to stop a long stream. Multiple
// sequential Rows (or ForEach) calls on one Result re-enumerate from
// the start.
func (r *Result) Rows(ctx context.Context) (*Rows, error) {
	if r.closed {
		return nil, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cur, err := r.newCursor()
	if err != nil {
		return nil, err
	}
	if cl, ok := cur.(rowCloser); ok {
		// Track parallel cursors so Result.Close joins their workers
		// before the pooled store is recycled.
		r.closers = append(r.closers, cl)
	}
	return &Rows{
		res:    r,
		ctx:    ctx,
		cur:    cur,
		cols:   r.Schema(),
		toSkip: r.Query.Offset,
		limit:  r.Query.Limit,
	}, nil
}

// Columns returns the output column names.
func (rs *Rows) Columns() []string { return rs.cols }

// Err returns the error that terminated iteration, if any. It is nil
// after a normal end of stream.
func (rs *Rows) Err() error { return rs.err }

// Close releases the cursor, joining any segment workers a parallel
// enumeration spawned. It is idempotent and always returns the
// iteration error, if any. Close does not close the underlying Result.
func (rs *Rows) Close() error {
	rs.closed = true
	rs.done = true
	rs.tuple = nil // Scan after Close must not re-deliver the last row
	if c, ok := rs.cur.(rowCloser); ok {
		c.close()
		rs.res.dropCloser(c)
	}
	return rs.err
}

// fail records err and stops iteration. Segment workers are joined
// immediately — iteration is over, nothing will drain them.
func (rs *Rows) fail(err error) {
	rs.err = err
	rs.done = true
	rs.tuple = nil
	if c, ok := rs.cur.(rowCloser); ok {
		c.close()
	}
}

// checkCtx polls the context every ctxCheckEvery advances.
func (rs *Rows) checkCtx(force bool) bool {
	rs.sinceCk++
	if !force && rs.sinceCk < ctxCheckEvery {
		return true
	}
	rs.sinceCk = 0
	if err := rs.ctx.Err(); err != nil {
		rs.fail(err)
		return false
	}
	return true
}

// Next advances to the next row, returning false at the end of the
// stream, on error, or once the context is cancelled (check Err to
// distinguish). The first call also performs the OFFSET skip.
func (rs *Rows) Next() bool {
	if rs.closed || rs.done {
		return false
	}
	if rs.res.closed {
		rs.fail(ErrClosed)
		return false
	}
	if rs.toSkip > 0 {
		if !rs.checkCtx(true) {
			return false
		}
		// Ranked route first: position directly on the offset target via
		// subtree counts instead of stepping the odometer rs.toSkip times.
		if sk, ok := rs.cur.(rowSeeker); ok {
			if k, handled := sk.seekRows(rs.toSkip); handled {
				seekOffsets.Add(1)
				if k < rs.toSkip { // exhausted inside the skipped prefix
					rs.done = true
					return false
				}
				rs.toSkip = 0
			}
		}
		if rs.toSkip > 0 {
			skipOffsets.Add(1)
		}
		for rs.toSkip > 0 {
			chunk := rs.toSkip
			if chunk > ctxCheckEvery {
				chunk = ctxCheckEvery
			}
			k, err := rs.cur.skip(chunk)
			if err != nil {
				rs.fail(err)
				return false
			}
			rs.toSkip -= k
			if k < chunk { // exhausted inside the skipped prefix
				rs.done = true
				return false
			}
			if err := rs.ctx.Err(); err != nil {
				rs.fail(err)
				return false
			}
		}
	}
	if rs.limit > 0 && rs.emitted >= rs.limit {
		rs.done = true
		rs.tuple = nil
		return false
	}
	// Always poll the context on the first row so even a tiny result
	// honours an already-cancelled context; thereafter every
	// ctxCheckEvery rows.
	if !rs.checkCtx(rs.emitted == 0) {
		return false
	}
	t, ok, err := rs.cur.step()
	if err != nil {
		rs.fail(err)
		return false
	}
	if !ok {
		rs.done = true
		rs.tuple = nil // Scan after exhaustion must error, not repeat
		return false
	}
	rs.tuple = t
	rs.emitted++
	return true
}

// Tuple returns the current row. The slice is reused by Next; clone it
// to retain.
func (rs *Rows) Tuple() relation.Tuple { return rs.tuple }

// Scan copies the current row into dest, one target per column.
// Supported targets: *int64, *float64, *string, *bool, *values.Value
// and *any (which receives int64/float64/string/bool/nil like the
// database/sql driver). Integers widen into *float64 targets; a float
// column refuses an *int64 target rather than truncating.
func (rs *Rows) Scan(dest ...any) error {
	if rs.tuple == nil {
		return errors.New("engine: Scan called without a successful Next")
	}
	if len(dest) != len(rs.tuple) {
		return fmt.Errorf("engine: Scan got %d targets for %d columns", len(dest), len(rs.tuple))
	}
	for i, d := range dest {
		if err := scanValue(rs.tuple[i], d); err != nil {
			return fmt.Errorf("engine: Scan column %d (%s): %w", i, rs.cols[i], err)
		}
	}
	return nil
}

func scanValue(v values.Value, dest any) error {
	switch d := dest.(type) {
	case *values.Value:
		*d = v
	case *any:
		*d = GoValue(v)
	case *int64:
		// Float targets would silently truncate; refuse like database/sql.
		if v.Kind() != values.Int {
			return fmt.Errorf("cannot scan %s into *int64", v.Kind())
		}
		*d = v.Int()
	case *float64:
		if !v.IsNumeric() {
			return fmt.Errorf("cannot scan %s into *float64", v.Kind())
		}
		*d = v.AsFloat()
	case *string:
		if v.Kind() != values.String {
			*d = v.String()
		} else {
			*d = v.Str()
		}
	case *bool:
		if v.Kind() != values.Bool {
			return fmt.Errorf("cannot scan %s into *bool", v.Kind())
		}
		*d = v.Bool()
	default:
		return fmt.Errorf("unsupported Scan target %T", dest)
	}
	return nil
}

// GoValue converts an engine value to its plain Go representation:
// int64, float64, string, bool, nil, or []any for vectors.
func GoValue(v values.Value) any {
	switch v.Kind() {
	case values.Int:
		return v.Int()
	case values.Float:
		return v.Float()
	case values.String:
		return v.Str()
	case values.Bool:
		return v.Bool()
	case values.Vec:
		out := make([]any, v.VecLen())
		for i := range out {
			out[i] = GoValue(v.VecAt(i))
		}
		return out
	default: // Null
		return nil
	}
}

// newCursor builds the enumeration cursor for the query's path: flat
// projection for SPJ queries, on-the-fly grouped aggregation when the
// order is by group attributes, and the materialised-aggregate path
// (with its flat-sort fallback) when ordering by an aggregate output.
func (r *Result) newCursor() (rowCursor, error) {
	if r.fastCount != nil {
		// Bare COUNT(*) answered from the ranked root counts; the
		// aggregation plan never executed (see fastCountValue).
		return &sliceCursor{rows: []relation.Tuple{{values.NewInt(*r.fastCount)}}}, nil
	}
	if !r.Query.IsAggregate() {
		return r.newSPJCursor()
	}
	if orderOnAggregate(r.Query) || r.eng.Materialise {
		return r.newMaterialisedCursor()
	}
	return r.newGroupedCursor(true)
}

// projCursor enumerates flat tuples and projects output columns; the
// SPJ path. Skipping delegates to the enumerator, so no skipped tuple
// is ever assembled.
type projCursor struct {
	en  frep.TupleEnum
	idx []int
	out relation.Tuple
}

func (c *projCursor) step() (relation.Tuple, bool, error) {
	if !c.en.Next() {
		return nil, false, nil
	}
	t := c.en.Tuple()
	for i, j := range c.idx {
		c.out[i] = t[j]
	}
	return c.out, true, nil
}

func (c *projCursor) skip(n int) (int, error) { return c.en.Skip(n), nil }

func (r *Result) newSPJCursor() (rowCursor, error) {
	var specs []frep.OrderSpec
	for _, o := range r.Query.OrderBy {
		specs = append(specs, frep.OrderSpec{Attr: o.Attr, Desc: o.Desc})
	}
	build := func() (rowCursor, error) {
		en, err := r.rel().Enumerator(specs)
		if err != nil {
			return nil, err
		}
		outs := r.Query.OutputAttrs()
		if len(outs) == 0 {
			outs = en.Schema()
		}
		idx, err := columnIndices(en.Schema(), outs)
		if err != nil {
			return nil, err
		}
		return &projCursor{en: en, idx: idx, out: make(relation.Tuple, len(idx))}, nil
	}
	desc := len(specs) > 0 && specs[0].Desc
	return r.maybeParallelEnum(build, func(c rowCursor) segmentable {
		return asSegmentable(c.(*projCursor).en)
	}, desc, MinParallelEnumRows)
}

// groupCursor streams one output row per group from a grouped
// enumerator, assembling aggregate outputs and applying HAVING. With
// no HAVING, skipping delegates to the group enumerator and therefore
// never evaluates the skipped groups' aggregates.
type groupCursor struct {
	ge       frep.GroupEnum
	groupIdx []int
	aggOuts  []aggOutput
	nGroup   int
	having   *havingFilter
	out      relation.Tuple
}

func (c *groupCursor) step() (relation.Tuple, bool, error) {
	for {
		ok, err := c.ge.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		row := c.ge.Tuple()
		for i, j := range c.groupIdx {
			c.out[i] = row[j]
		}
		fieldVals := row[c.nGroup:]
		for i, ao := range c.aggOuts {
			c.out[len(c.groupIdx)+i] = ao.value(fieldVals)
		}
		if !c.having.keep(c.out) {
			continue
		}
		return c.out, true, nil
	}
}

func (c *groupCursor) skip(n int) (int, error) {
	if c.having == nil {
		return c.ge.Skip(n), nil
	}
	return skipBySteps(c, n)
}

// skipBySteps implements skip for cursors whose HAVING filter makes
// blind enumerator skipping impossible: rows are stepped (into the
// reused buffer, O(1) memory) and discarded.
func skipBySteps(c rowCursor, n int) (int, error) {
	k := 0
	for k < n {
		_, ok, err := c.step()
		if err != nil || !ok {
			return k, err
		}
		k++
	}
	return k, nil
}

// newGroupedCursor builds the on-the-fly grouped aggregation cursor
// (Example 1, scenario 3), fanning large group universes across segment
// workers. applyOrder false drops the ORDER BY specs (used by the sort
// fallback, which re-orders afterwards).
func (r *Result) newGroupedCursor(applyOrder bool) (rowCursor, error) {
	build := func() (rowCursor, error) { return r.buildGroupedCursor(applyOrder) }
	desc := applyOrder && len(r.Query.OrderBy) > 0 && r.Query.OrderBy[0].Desc
	return r.maybeParallelEnum(build, func(c rowCursor) segmentable {
		return asSegmentable(c.(*groupCursor).ge)
	}, desc, MinParallelGroupRows)
}

// buildGroupedCursor constructs one (serial) grouped cursor; the
// parallel wrapper above windows several of them.
func (r *Result) buildGroupedCursor(applyOrder bool) (*groupCursor, error) {
	q := r.Query
	fields := plan.RequiredFields(q.Aggregates)
	// Group slots: order-by attributes first (all within GroupBy on this
	// path), then remaining group attributes in tree DFS order.
	var specs []frep.OrderSpec
	seen := map[string]bool{}
	if applyOrder {
		for _, o := range q.OrderBy {
			specs = append(specs, frep.OrderSpec{Attr: o.Attr, Desc: o.Desc})
			seen[o.Attr] = true
		}
	}
	inG := map[string]bool{}
	for _, g := range q.GroupBy {
		inG[g] = true
	}
	for _, n := range r.Tree().Nodes() {
		if n.IsAgg() {
			continue
		}
		for _, a := range n.Attrs {
			if inG[a] && !seen[a] {
				specs = append(specs, frep.OrderSpec{Attr: a})
				seen[a] = true
			}
		}
	}
	ge, err := r.rel().GroupEnumerator(specs, fields)
	if err != nil {
		return nil, err
	}
	if sge, ok := ge.(*frep.StoreGroupEnumerator); ok {
		// Global aggregates (no group loops) evaluate each part once
		// over a whole root subtree; parallelism lives inside that
		// evaluation rather than in windowing the (absent) group loop.
		if par := r.parallelism(); par > 1 {
			sge.SetParallelEval(par)
		}
	}
	schema := ge.Schema()
	nGroupCols := len(schema) - len(fields)
	groupIdx, err := columnIndices(schema[:nGroupCols], q.GroupBy)
	if err != nil {
		return nil, err
	}
	aggOuts, err := buildAggOutputs(q.Aggregates, fields)
	if err != nil {
		return nil, err
	}
	having, err := newHavingFilter(q)
	if err != nil {
		return nil, err
	}
	return &groupCursor{
		ge:       ge,
		groupIdx: groupIdx,
		aggOuts:  aggOuts,
		nGroup:   nGroupCols,
		having:   having,
		out:      make(relation.Tuple, len(q.GroupBy)+len(aggOuts)),
	}, nil
}

// sliceCursor yields pre-materialised rows; the flat-sort fallback.
type sliceCursor struct {
	rows []relation.Tuple
	i    int
}

func (c *sliceCursor) step() (relation.Tuple, bool, error) {
	if c.i >= len(c.rows) {
		return nil, false, nil
	}
	t := c.rows[c.i]
	c.i++
	return t, true, nil
}

func (c *sliceCursor) skip(n int) (int, error) {
	left := len(c.rows) - c.i
	if n > left {
		n = left
	}
	c.i += n
	return n, nil
}
