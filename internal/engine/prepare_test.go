package engine

import (
	"fmt"
	"sync"
	"testing"

	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
)

func prepareQueries() []*query.Query {
	return []*query.Query{
		{ // aggregation over the three-way join
			Relations:  []string{"Orders", "Pizzas", "Items"},
			Equalities: pizzeriaEqualities(),
			GroupBy:    []string{"customer"},
			Aggregates: []query.Aggregate{{Fn: query.Sum, Arg: "price", As: "revenue"}},
			OrderBy:    []query.OrderItem{{Attr: "revenue", Desc: true}, {Attr: "customer"}},
		},
		{ // SPJ with projection and order
			Relations:  []string{"Orders"},
			Projection: []string{"customer", "pizza"},
			OrderBy:    []query.OrderItem{{Attr: "customer"}, {Attr: "pizza"}},
		},
		{ // global aggregate
			Relations:  []string{"Orders", "Pizzas"},
			Equalities: []query.Equality{{A: "pizza", B: "pizza2"}},
			Aggregates: []query.Aggregate{{Fn: query.Count, As: "n"}},
		},
	}
}

// TestPreparedMatchesRun checks that Prepare+Exec gives exactly the
// rows of Run, on first and repeated executions.
func TestPreparedMatchesRun(t *testing.T) {
	db := pizzeriaDB()
	e := New()
	for qi, q := range prepareQueries() {
		want, err := e.Run(q, db)
		if err != nil {
			t.Fatalf("query %d: Run: %v", qi, err)
		}
		wantRel, err := want.Relation()
		if err != nil {
			t.Fatal(err)
		}
		p, err := e.Prepare(q, db)
		if err != nil {
			t.Fatalf("query %d: Prepare: %v", qi, err)
		}
		for rep := 0; rep < 3; rep++ {
			res, err := p.Exec(db)
			if err != nil {
				t.Fatalf("query %d rep %d: Exec: %v", qi, rep, err)
			}
			rel, err := res.Relation()
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(rel.Tuples) != fmt.Sprint(wantRel.Tuples) {
				t.Fatalf("query %d rep %d:\nprepared: %v\nrun:      %v", qi, rep, rel.Tuples, wantRel.Tuples)
			}
		}
	}
}

// TestPreparedConcurrentExec executes one shared Prepared from many
// goroutines; run with -race this is the engine's concurrency test for
// the plan-cache execution path.
func TestPreparedConcurrentExec(t *testing.T) {
	db := pizzeriaDB()
	e := New()
	q := prepareQueries()[0]
	p, err := e.Prepare(q, db)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.Exec(db)
	if err != nil {
		t.Fatal(err)
	}
	refRel, err := ref.Relation()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := p.Exec(db)
				if err != nil {
					errs <- err
					return
				}
				rel, err := res.Relation()
				if err != nil {
					errs <- err
					return
				}
				if fmt.Sprint(rel.Tuples) != fmt.Sprint(refRel.Tuples) {
					errs <- fmt.Errorf("concurrent Exec diverged: %v vs %v", rel.Tuples, refRel.Tuples)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPreparedStaleRelation checks that Exec fails cleanly when the
// database no longer matches the prepared plan.
func TestPreparedStaleRelation(t *testing.T) {
	db := pizzeriaDB()
	e := New()
	p, err := e.Prepare(prepareQueries()[0], db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(DB{}); err == nil {
		t.Fatal("Exec against an empty database should fail")
	}
	// A relation with a different schema must be rejected by the build.
	bad := pizzeriaDB()
	bad["Items"] = relation.MustNew("Items", []string{"other"}, nil)
	if _, err := p.Exec(bad); err == nil {
		t.Fatal("Exec against a reshaped relation should fail")
	}
}
