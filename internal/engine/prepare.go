package engine

import (
	"fmt"
	"sync"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/plan"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
)

// storePool recycles arena stores across query executions: a query's
// whole factorised working set lives in one store, so returning it to
// the pool (Result.Close) makes the steady-state hot path allocate only
// on slab high-water-mark growth.
var storePool = sync.Pool{New: func() any { return frep.NewStore() }}

func getStore() *frep.Store {
	s := storePool.Get().(*frep.Store)
	s.Reset()
	return s
}

func putStore(s *frep.Store) { storePool.Put(s) }

// Prepared is a compiled query: the validated logical query, the chosen
// per-relation path orders, and the optimised f-plan. Preparing once and
// executing many times skips validation, path-order search (which plans
// up to 64 candidate forests) and f-plan optimisation on every run —
// the basis of the server's plan cache.
//
// A Prepared is immutable after Prepare (apart from the internal shared
// base snapshot, which is built once under a sync.Once) and safe for
// concurrent Exec/ExecShared calls: f-plan operators address f-tree
// nodes by attribute name and every execution builds its own factorised
// representation, so no state is shared between concurrent executions.
type Prepared struct {
	// Query is the validated logical query.
	Query *query.Query
	// Orders holds the chosen linear-path attribute order per relation,
	// aligned with Query.Relations.
	Orders [][]string
	// Plan is the optimised f-plan, reusable across executions.
	Plan *plan.Plan

	eng *Engine

	// shared caches the factorised base relations (one arena store
	// snapshot) for ExecShared.
	shared struct {
		once  sync.Once
		store *frep.Store
		roots []frep.NodeID
		err   error
	}
}

// resolveRelations looks up the query's relations in the database,
// checking attribute disjointness, and returns them with their catalogue
// metadata.
func resolveRelations(q *query.Query, db DB) ([]*relation.Relation, []ftree.CatalogRelation, error) {
	rels := make([]*relation.Relation, len(q.Relations))
	var cat []ftree.CatalogRelation
	seen := map[string]string{}
	for i, name := range q.Relations {
		rel, ok := db[name]
		if !ok {
			return nil, nil, fmt.Errorf("engine: unknown relation %q", name)
		}
		for _, a := range rel.Attrs {
			if prev, dup := seen[a]; dup {
				return nil, nil, fmt.Errorf("engine: attribute %q appears in both %s and %s; rename one side", a, prev, name)
			}
			seen[a] = name
		}
		rels[i] = rel
		cat = append(cat, ftree.CatalogRelation{Name: name, Attrs: rel.Attrs, Size: rel.Cardinality()})
	}
	return rels, cat, nil
}

// Prepare validates and optimises the query against the database's
// catalogue without executing it: it picks the cheapest path orders,
// plans once over the resulting forest, and returns a reusable Prepared.
//
// The plan's correctness depends only on the relations' schemas, not
// their contents; cardinalities influence only the cost-based choice
// among equivalent plans. A Prepared therefore stays valid as long as
// the named relations keep their attributes.
func (e *Engine) Prepare(q *query.Query, db DB) (*Prepared, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rels, cat, err := resolveRelations(q, db)
	if err != nil {
		return nil, err
	}
	orders, err := e.choosePathOrders(q, rels, cat)
	if err != nil {
		return nil, err
	}
	f := ftree.New()
	for i := range rels {
		f.NewRelationPath(orders[i]...)
	}
	pl := &plan.Planner{Catalog: cat, PartialAgg: e.PartialAgg, Exhaustive: e.Exhaustive}
	fplan, err := pl.Plan(f, q)
	if err != nil {
		return nil, err
	}
	return &Prepared{Query: q, Orders: orders, Plan: fplan, eng: e}, nil
}

// buildForest factorises the query's relations in the prepared path
// orders into the store, returning the fresh forest and one root per
// relation.
func (p *Prepared) buildForest(db DB, st *frep.Store) (*ftree.Forest, []frep.NodeID, error) {
	f := ftree.New()
	var roots []frep.NodeID
	for i, name := range p.Query.Relations {
		rel, ok := db[name]
		if !ok {
			return nil, nil, fmt.Errorf("engine: unknown relation %q", name)
		}
		f.NewRelationPath(p.Orders[i]...)
		sub := ftree.New()
		sub.NewRelationPath(p.Orders[i]...)
		rs, err := frep.BuildStoreUnchecked(st, rel, sub)
		if err != nil {
			return nil, nil, err
		}
		roots = append(roots, rs[0])
	}
	return f, roots, nil
}

// Exec runs the prepared plan against the database: each relation is
// factorised as a linear path in the prepared order into a pooled arena
// store and the cached f-plan is executed, skipping validation and
// optimisation. Exec may be called concurrently from multiple
// goroutines. Call Result.Close when done with the result to recycle
// its store.
//
// With Engine.Legacy set, execution uses the pointer-based
// representation instead (and Result.FRel is populated).
func (p *Prepared) Exec(db DB) (*Result, error) {
	if p.eng.Legacy {
		return p.execLegacy(db)
	}
	st := getStore()
	f, roots, err := p.buildForest(db, st)
	if err != nil {
		putStore(st)
		return nil, err
	}
	ar := &fops.ARel{Tree: f, Store: st, Roots: roots}
	return p.finish(ar)
}

// ExecShared is Exec for databases whose relations do not change between
// calls (the server's contract): the factorised base relations are built
// once, kept as an immutable store snapshot inside the Prepared, and
// each execution starts from a slab copy of that snapshot instead of
// re-sorting the base relations. The first call's data is captured;
// callers mutating relations between calls must use Exec.
func (p *Prepared) ExecShared(db DB) (*Result, error) {
	if p.eng.Legacy {
		return p.execLegacy(db)
	}
	p.shared.once.Do(func() {
		st := frep.NewStore()
		_, roots, err := p.buildForest(db, st)
		if err != nil {
			p.shared.err = err
			return
		}
		p.shared.store = st.Snapshot()
		p.shared.roots = roots
	})
	if p.shared.err != nil {
		return nil, p.shared.err
	}
	st := getStore()
	p.shared.store.CloneInto(st)
	f := ftree.New()
	for i := range p.Query.Relations {
		f.NewRelationPath(p.Orders[i]...)
	}
	ar := &fops.ARel{Tree: f, Store: st, Roots: append([]frep.NodeID{}, p.shared.roots...)}
	return p.finish(ar)
}

// finish executes the prepared plan over the freshly built arena
// representation and wraps the result.
func (p *Prepared) finish(ar *fops.ARel) (*Result, error) {
	if ar.IsEmpty() {
		ar.MakeEmpty()
	}
	if err := p.Plan.Execute(ar); err != nil {
		putStore(ar.Store)
		return nil, err
	}
	return &Result{Query: p.Query, ARel: ar, Plan: p.Plan, eng: p.eng, pooled: true}, nil
}

// execLegacy is the pointer-based execution path, kept for old-vs-new
// equivalence testing.
func (p *Prepared) execLegacy(db DB) (*Result, error) {
	f := ftree.New()
	var roots []*frep.Union
	for i, name := range p.Query.Relations {
		rel, ok := db[name]
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q", name)
		}
		f.NewRelationPath(p.Orders[i]...)
		sub := ftree.New()
		sub.NewRelationPath(p.Orders[i]...)
		rs, err := frep.BuildUnchecked(rel, sub)
		if err != nil {
			return nil, err
		}
		roots = append(roots, rs[0])
	}
	fr := &fops.FRel{Tree: f, Roots: roots}
	if fr.IsEmpty() {
		fr.MakeEmpty()
	}
	if err := p.Plan.Execute(fr); err != nil {
		return nil, err
	}
	return &Result{Query: p.Query, FRel: fr, Plan: p.Plan, eng: p.eng}, nil
}
