package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/plan"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
)

// storePool recycles arena stores across query executions: a query's
// whole factorised working set lives in one store, so returning it to
// the pool (Result.Close) makes the steady-state hot path allocate only
// on slab high-water-mark growth.
var storePool = sync.Pool{New: func() any { return frep.NewStore() }}

// storeReturns counts pool returns; the cancellation tests use it to
// assert that every error path hands its pooled store back exactly once.
var storeReturns atomic.Int64

func getStore() *frep.Store {
	s := storePool.Get().(*frep.Store)
	s.Reset()
	return s
}

func putStore(s *frep.Store) {
	storeReturns.Add(1)
	storePool.Put(s)
}

// Prepared is a compiled query: the validated logical query, the chosen
// per-relation path orders, and the optimised f-plan. Preparing once and
// executing many times skips validation, path-order search (which plans
// up to 64 candidate forests) and f-plan optimisation on every run —
// the basis of the server's plan cache.
//
// A Prepared is immutable after Prepare (apart from the internal shared
// base snapshot, which is built lazily under a mutex) and safe for
// concurrent Exec/ExecShared calls: f-plan operators address f-tree
// nodes by attribute name and every execution builds its own factorised
// representation, so no state is shared between concurrent executions.
type Prepared struct {
	// Query is the validated logical query.
	Query *query.Query
	// Orders holds the chosen linear-path attribute order per relation,
	// aligned with Query.Relations.
	Orders [][]string
	// Plan is the optimised f-plan, reusable across executions.
	Plan *plan.Plan

	eng *Engine

	// shared caches the factorised base relations (one arena store
	// snapshot) for ExecShared. A failed build (including one cancelled
	// by its caller's context) is not cached; the next call retries.
	// rels records the exact relation pointers the snapshot was built
	// from: mutable catalogues publish a fresh relation pointer per
	// write, so a pointer mismatch on a later call detects a stale
	// snapshot and forces a rebuild (the stale-plan guard).
	shared struct {
		mu    sync.Mutex
		built bool
		store *frep.Store
		roots []frep.NodeID
		rels  []*relation.Relation
	}
}

// resolveRelations looks up the query's relations in the database,
// checking attribute disjointness, and returns them with their catalogue
// metadata.
func resolveRelations(q *query.Query, db DB) ([]*relation.Relation, []ftree.CatalogRelation, error) {
	rels := make([]*relation.Relation, len(q.Relations))
	var cat []ftree.CatalogRelation
	seen := map[string]string{}
	for i, name := range q.Relations {
		rel, ok := db[name]
		if !ok {
			return nil, nil, fmt.Errorf("engine: unknown relation %q", name)
		}
		for _, a := range rel.Attrs {
			if prev, dup := seen[a]; dup {
				return nil, nil, fmt.Errorf("engine: attribute %q appears in both %s and %s; rename one side", a, prev, name)
			}
			seen[a] = name
		}
		rels[i] = rel
		cat = append(cat, ftree.CatalogRelation{Name: name, Attrs: rel.Attrs, Size: rel.Cardinality()})
	}
	return rels, cat, nil
}

// Prepare validates and optimises the query against the database's
// catalogue without executing it: it picks the cheapest path orders,
// plans once over the resulting forest, and returns a reusable Prepared.
//
// The plan's correctness depends only on the relations' schemas, not
// their contents; cardinalities influence only the cost-based choice
// among equivalent plans. A Prepared therefore stays valid as long as
// the named relations keep their attributes.
func (e *Engine) Prepare(q *query.Query, db DB) (*Prepared, error) {
	return e.PrepareContext(context.Background(), q, db)
}

// PrepareContext is Prepare with cancellation: the context is threaded
// into the path-order search and the f-plan optimiser, so long
// optimisations (notably the exhaustive Dijkstra search) stop promptly
// when the context fires.
func (e *Engine) PrepareContext(ctx context.Context, q *query.Query, db DB) (*Prepared, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rels, cat, err := resolveRelations(q, db)
	if err != nil {
		return nil, err
	}
	orders, err := e.choosePathOrders(ctx, q, rels, cat)
	if err != nil {
		return nil, err
	}
	f := ftree.New()
	for i := range rels {
		f.NewRelationPath(orders[i]...)
	}
	pl := &plan.Planner{Catalog: cat, PartialAgg: e.PartialAgg, Exhaustive: e.Exhaustive, Ctx: ctx}
	fplan, err := pl.Plan(f, q)
	if err != nil {
		return nil, err
	}
	return &Prepared{Query: q, Orders: orders, Plan: fplan, eng: e}, nil
}

// buildForest factorises the query's relations in the prepared path
// orders into the store, returning the fresh forest and one root per
// relation. A relation whose catalogue snapshot carries a prebuilt
// factorisation in the required order is grafted (three slab copies)
// instead of re-sorted from flat tuples — the cold-start fast path for
// databases loaded with LoadCatalog. The context is checked between
// relations so huge base-data builds honour cancellation.
func (p *Prepared) buildForest(ctx context.Context, db DB, st *frep.Store) (*ftree.Forest, []frep.NodeID, error) {
	f := ftree.New()
	var roots []frep.NodeID
	for i, name := range p.Query.Relations {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		rel, ok := db[name]
		if !ok {
			return nil, nil, fmt.Errorf("engine: unknown relation %q", name)
		}
		f.NewRelationPath(p.Orders[i]...)
		if fact := factFor(rel, p.Orders[i]); fact != nil {
			roots = append(roots, graftFact(st, fact))
			continue
		}
		sub := ftree.New()
		sub.NewRelationPath(p.Orders[i]...)
		rs, err := frep.BuildStoreUnchecked(st, rel, sub)
		if err != nil {
			return nil, nil, err
		}
		roots = append(roots, rs[0])
	}
	return f, roots, nil
}

// Exec runs the prepared plan against the database: each relation is
// factorised as a linear path in the prepared order into a pooled arena
// store and the cached f-plan is executed, skipping validation and
// optimisation. Exec may be called concurrently from multiple
// goroutines. Call Result.Close when done with the result to recycle
// its store.
//
// With Engine.Legacy set, execution uses the pointer-based
// representation instead (and Result.FRel is populated).
func (p *Prepared) Exec(db DB) (*Result, error) {
	return p.ExecContext(context.Background(), db)
}

// ExecContext is Exec with cancellation: the context is checked while
// the base relations are factorised and between f-plan operators, and
// the pooled store is returned before the error surfaces, so a
// cancelled execution leaks nothing.
func (p *Prepared) ExecContext(ctx context.Context, db DB) (*Result, error) {
	if p.eng.Legacy {
		return p.execLegacy(ctx, db)
	}
	st := getStore()
	f, roots, err := p.buildForest(ctx, db, st)
	if err != nil {
		putStore(st)
		return nil, err
	}
	// One pass over the fresh base slab makes every operator's value
	// windows kernel-eligible (the column index is a prefix property, so
	// nodes the operators append later simply fall back to scalar).
	st.BuildCols()
	ar := &fops.ARel{Tree: f, Store: st, Roots: roots}
	return p.finish(ctx, ar)
}

// ExecShared is Exec for databases whose relations do not change between
// calls (the server's contract): the factorised base relations are built
// once, kept as an immutable store snapshot inside the Prepared, and
// each execution starts from a slab copy of that snapshot instead of
// re-sorting the base relations. The first call's data is captured;
// callers mutating relations between calls must use Exec.
func (p *Prepared) ExecShared(db DB) (*Result, error) {
	return p.ExecSharedContext(context.Background(), db)
}

// ExecSharedContext is ExecShared with cancellation; see ExecContext.
// The shared base snapshot is built with the first caller's context: a
// cancellation during that build is not cached, so the next call
// rebuilds it.
func (p *Prepared) ExecSharedContext(ctx context.Context, db DB) (*Result, error) {
	if p.eng.Legacy {
		return p.execLegacy(ctx, db)
	}
	p.shared.mu.Lock()
	if p.shared.built {
		// Stale-plan guard: if any relation in db is a different pointer
		// from the one the snapshot captured (a mutable catalogue
		// published a new generation), drop the snapshot and rebuild.
		// The match path costs len(Relations) map lookups and pointer
		// compares — no allocations.
		for i, name := range p.Query.Relations {
			if db[name] != p.shared.rels[i] {
				p.shared.built = false
				p.shared.store = nil
				p.shared.roots = nil
				p.shared.rels = nil
				break
			}
		}
	}
	if !p.shared.built {
		bst := frep.NewStore()
		_, roots, err := p.buildForest(ctx, db, bst)
		if err != nil {
			// Not cached: a cancelled (or otherwise failed) snapshot build
			// must not poison the Prepared for later callers.
			p.shared.mu.Unlock()
			return nil, err
		}
		// Rank the shared base once: every execution clones the snapshot,
		// so ranked OFFSET seeks, COUNT(*) fast paths and weighted
		// parallel splits come for free on all of them.
		if err := bst.BuildRanks(); err != nil {
			p.shared.mu.Unlock()
			return nil, err
		}
		// Likewise the column index: built once here, shared by pointer
		// into every per-execution clone.
		bst.BuildCols()
		p.shared.store = bst.Snapshot()
		p.shared.roots = roots
		rels := make([]*relation.Relation, len(p.Query.Relations))
		for i, name := range p.Query.Relations {
			rels[i] = db[name]
		}
		p.shared.rels = rels
		p.shared.built = true
	}
	sharedStore, sharedRoots := p.shared.store, p.shared.roots
	p.shared.mu.Unlock()
	st := getStore()
	sharedStore.CloneInto(st)
	f := ftree.New()
	for i := range p.Query.Relations {
		f.NewRelationPath(p.Orders[i]...)
	}
	ar := &fops.ARel{Tree: f, Store: st, Roots: append([]frep.NodeID{}, sharedRoots...)}
	return p.finish(ctx, ar)
}

// finish executes the prepared plan over the freshly built arena
// representation and wraps the result.
func (p *Prepared) finish(ctx context.Context, ar *fops.ARel) (*Result, error) {
	if ar.IsEmpty() {
		ar.MakeEmpty()
	}
	if n, ok := fastCountValue(p.Query, ar); ok {
		return &Result{Query: p.Query, ARel: ar, Plan: p.Plan, eng: p.eng, pooled: true, fastCount: &n}, nil
	}
	if err := p.Plan.ExecuteParallel(ctx, ar, p.eng.par()); err != nil {
		putStore(ar.Store)
		return nil, err
	}
	noteParallelExec(ar)
	return &Result{Query: p.Query, ARel: ar, Plan: p.Plan, eng: p.eng, pooled: true}, nil
}

// execLegacy is the pointer-based execution path, kept for old-vs-new
// equivalence testing.
func (p *Prepared) execLegacy(ctx context.Context, db DB) (*Result, error) {
	f := ftree.New()
	var roots []*frep.Union
	for i, name := range p.Query.Relations {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rel, ok := db[name]
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q", name)
		}
		f.NewRelationPath(p.Orders[i]...)
		sub := ftree.New()
		sub.NewRelationPath(p.Orders[i]...)
		rs, err := frep.BuildUnchecked(rel, sub)
		if err != nil {
			return nil, err
		}
		roots = append(roots, rs[0])
	}
	fr := &fops.FRel{Tree: f, Roots: roots}
	if fr.IsEmpty() {
		fr.MakeEmpty()
	}
	if err := p.Plan.ExecuteContext(ctx, fr); err != nil {
		return nil, err
	}
	return &Result{Query: p.Query, FRel: fr, Plan: p.Plan, eng: p.eng}, nil
}
