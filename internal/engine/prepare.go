package engine

import (
	"fmt"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/plan"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
)

// Prepared is a compiled query: the validated logical query, the chosen
// per-relation path orders, and the optimised f-plan. Preparing once and
// executing many times skips validation, path-order search (which plans
// up to 64 candidate forests) and f-plan optimisation on every run —
// the basis of the server's plan cache.
//
// A Prepared is immutable after Prepare and safe for concurrent Exec
// calls: f-plan operators address f-tree nodes by attribute name and
// every execution builds its own factorised representation, so no state
// is shared between concurrent executions.
type Prepared struct {
	// Query is the validated logical query.
	Query *query.Query
	// Orders holds the chosen linear-path attribute order per relation,
	// aligned with Query.Relations.
	Orders [][]string
	// Plan is the optimised f-plan, reusable across executions.
	Plan *plan.Plan

	eng *Engine
}

// resolveRelations looks up the query's relations in the database,
// checking attribute disjointness, and returns them with their catalogue
// metadata.
func resolveRelations(q *query.Query, db DB) ([]*relation.Relation, []ftree.CatalogRelation, error) {
	rels := make([]*relation.Relation, len(q.Relations))
	var cat []ftree.CatalogRelation
	seen := map[string]string{}
	for i, name := range q.Relations {
		rel, ok := db[name]
		if !ok {
			return nil, nil, fmt.Errorf("engine: unknown relation %q", name)
		}
		for _, a := range rel.Attrs {
			if prev, dup := seen[a]; dup {
				return nil, nil, fmt.Errorf("engine: attribute %q appears in both %s and %s; rename one side", a, prev, name)
			}
			seen[a] = name
		}
		rels[i] = rel
		cat = append(cat, ftree.CatalogRelation{Name: name, Attrs: rel.Attrs, Size: rel.Cardinality()})
	}
	return rels, cat, nil
}

// Prepare validates and optimises the query against the database's
// catalogue without executing it: it picks the cheapest path orders,
// plans once over the resulting forest, and returns a reusable Prepared.
//
// The plan's correctness depends only on the relations' schemas, not
// their contents; cardinalities influence only the cost-based choice
// among equivalent plans. A Prepared therefore stays valid as long as
// the named relations keep their attributes.
func (e *Engine) Prepare(q *query.Query, db DB) (*Prepared, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	rels, cat, err := resolveRelations(q, db)
	if err != nil {
		return nil, err
	}
	orders, err := e.choosePathOrders(q, rels, cat)
	if err != nil {
		return nil, err
	}
	f := ftree.New()
	for i := range rels {
		f.NewRelationPath(orders[i]...)
	}
	pl := &plan.Planner{Catalog: cat, PartialAgg: e.PartialAgg, Exhaustive: e.Exhaustive}
	fplan, err := pl.Plan(f, q)
	if err != nil {
		return nil, err
	}
	return &Prepared{Query: q, Orders: orders, Plan: fplan, eng: e}, nil
}

// Exec runs the prepared plan against the database: each relation is
// factorised as a linear path in the prepared order and the cached
// f-plan is executed, skipping validation and optimisation. Exec may be
// called concurrently from multiple goroutines.
func (p *Prepared) Exec(db DB) (*Result, error) {
	f := ftree.New()
	var roots []*frep.Union
	for i, name := range p.Query.Relations {
		rel, ok := db[name]
		if !ok {
			return nil, fmt.Errorf("engine: unknown relation %q", name)
		}
		f.NewRelationPath(p.Orders[i]...)
		sub := ftree.New()
		sub.NewRelationPath(p.Orders[i]...)
		rs, err := frep.BuildUnchecked(rel, sub)
		if err != nil {
			return nil, err
		}
		roots = append(roots, rs[0])
	}
	fr := &fops.FRel{Tree: f, Roots: roots}
	if fr.IsEmpty() {
		fr.MakeEmpty()
	}
	if err := p.Plan.Execute(fr); err != nil {
		return nil, err
	}
	return &Result{Query: p.Query, FRel: fr, Plan: p.Plan, eng: p.eng}, nil
}
