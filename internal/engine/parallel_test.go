package engine

// Parallel-execution suite (run under -race in CI): parallel execution
// must produce byte-identical output to the serial path for the whole
// workload query set at every parallelism level, join all segment
// workers on every exit path, and hand pooled stores back exactly once
// under cancellation.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/workload"
)

// forceParallelThresholds lowers the size floors so that scale-1 test
// data exercises every parallel path, restoring them on cleanup.
func forceParallelThresholds(t *testing.T) {
	t.Helper()
	oldEval := frep.MinParallelEvalValues
	oldRebuild := fops.MinParallelRebuildValues
	oldEnum := MinParallelEnumRows
	oldFan := MaxEnumFanout
	frep.MinParallelEvalValues = 1
	fops.MinParallelRebuildValues = 1
	MinParallelEnumRows = 1
	MaxEnumFanout = 64 // exercise the merge machinery even on 1-core CI
	t.Cleanup(func() {
		frep.MinParallelEvalValues = oldEval
		fops.MinParallelRebuildValues = oldRebuild
		MinParallelEnumRows = oldEnum
		MaxEnumFanout = oldFan
	})
}

// TestGoldenParallelMatchesSerialView runs the workload's view queries
// (AGG Q1–Q5, AGG+ORD Q6–Q9, ORD Q10–Q13 ± LIMIT) serially and at
// P ∈ {2, 8}; outputs must be identical row for row.
func TestGoldenParallelMatchesSerialView(t *testing.T) {
	forceParallelThresholds(t)
	ds := workload.Generate(workload.Config{Scale: 1})
	cat := ds.Catalog()
	r1, err := ds.FactorisedR1Arena()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := ds.FactorisedR3Arena()
	if err != nil {
		t.Fatal(err)
	}
	type tc struct {
		name  string
		mk    func() *query.Query
		aview *fops.ARel
	}
	var cases []tc
	for i := 1; i <= 5; i++ {
		i := i
		cases = append(cases, tc{
			name: fmt.Sprintf("Q%d", i),
			mk: func() *query.Query {
				q, err := workload.AggQuery(i)
				if err != nil {
					t.Fatal(err)
				}
				return q
			},
			aview: r1,
		})
	}
	cases = append(cases,
		tc{name: "Q6", mk: workload.Q6, aview: r1},
		tc{name: "Q7", mk: workload.Q7, aview: r1},
		tc{name: "Q8", mk: workload.Q8, aview: r1},
		tc{name: "Q9", mk: workload.Q9, aview: r1},
	)
	for _, limit := range []int{0, 10} {
		limit := limit
		cases = append(cases,
			tc{name: fmt.Sprintf("Q10/limit=%d", limit), mk: func() *query.Query { return workload.Q10(limit) }, aview: r1},
			tc{name: fmt.Sprintf("Q11/limit=%d", limit), mk: func() *query.Query { return workload.Q11(limit) }, aview: r1},
			tc{name: fmt.Sprintf("Q12/limit=%d", limit), mk: func() *query.Query { return workload.Q12(limit) }, aview: r1},
			tc{name: fmt.Sprintf("Q13/limit=%d", limit), mk: func() *query.Query { return workload.Q13(limit) }, aview: r3},
		)
	}
	serial := &Engine{PartialAgg: true, Parallelism: 1}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := collectRows(t, func() (*Result, error) { return serial.RunOnARel(c.mk(), c.aview, cat) })
			for _, par := range []int{2, 8} {
				eng := &Engine{PartialAgg: true, Parallelism: par}
				got := collectRows(t, func() (*Result, error) { return eng.RunOnARel(c.mk(), c.aview, cat) })
				diffOrdered(t, fmt.Sprintf("%s/P=%d", c.name, par), want, got)
			}
		})
	}
}

// TestGoldenParallelMatchesSerialFlat runs the flat-input AGG queries
// (joins included, so the parallel merge/absorb/γ operator paths all
// fire) serially and at P ∈ {2, 8}.
func TestGoldenParallelMatchesSerialFlat(t *testing.T) {
	forceParallelThresholds(t)
	ds := workload.Generate(workload.Config{Scale: 1})
	db := DB(ds.DB())
	serial := &Engine{PartialAgg: true, Parallelism: 1}
	for i := 1; i <= 5; i++ {
		q, err := workload.FlatAggQuery(i)
		if err != nil {
			t.Fatal(err)
		}
		want := collectRows(t, func() (*Result, error) { return serial.Run(q, db) })
		for _, par := range []int{2, 8} {
			eng := &Engine{PartialAgg: true, Parallelism: par}
			q2, _ := workload.FlatAggQuery(i)
			got := collectRows(t, func() (*Result, error) { return eng.Run(q2, db) })
			diffOrdered(t, fmt.Sprintf("flat-Q%d/P=%d", i, par), want, got)
		}
	}
}

// TestParallelDescAndOffset covers the drain-order edge (DESC outer
// order reverses the segment drain) and OFFSET over a parallel stream.
func TestParallelDescAndOffset(t *testing.T) {
	forceParallelThresholds(t)
	db := bigDB(t, 5000)
	q := func(desc bool, offset, limit int) *query.Query {
		return &query.Query{
			Relations: []string{"Big"},
			OrderBy:   []query.OrderItem{{Attr: "k", Desc: desc}},
			Offset:    offset,
			Limit:     limit,
		}
	}
	serial := &Engine{PartialAgg: true, Parallelism: 1}
	par8 := &Engine{PartialAgg: true, Parallelism: 8}
	for _, c := range []struct {
		desc          bool
		offset, limit int
	}{
		{false, 0, 0}, {true, 0, 0},
		{false, 1234, 100}, {true, 1234, 100},
		{false, 4999, 0}, {true, 4999, 0},
	} {
		name := fmt.Sprintf("desc=%v/offset=%d/limit=%d", c.desc, c.offset, c.limit)
		want := collectRows(t, func() (*Result, error) { return serial.Run(q(c.desc, c.offset, c.limit), db) })
		got := collectRows(t, func() (*Result, error) { return par8.Run(q(c.desc, c.offset, c.limit), db) })
		diffOrdered(t, name, want, got)
	}
}

// TestParallelConcurrentSegmentWorkers runs parallel queries from many
// goroutines against one shared snapshot (the server's shape), under
// -race, and balances the store pool.
func TestParallelConcurrentSegmentWorkers(t *testing.T) {
	forceParallelThresholds(t)
	db := bigDB(t, 8000)
	eng := &Engine{PartialAgg: true, Parallelism: 4}
	prep, err := eng.Prepare(groupedQuery(), db)
	if err != nil {
		t.Fatal(err)
	}
	before := storeReturns.Load()
	const workers, reps = 4, 5
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				res, err := prep.ExecShared(db)
				if err != nil {
					errc <- err
					return
				}
				n, err := res.Count()
				res.Close()
				if err != nil {
					errc <- err
					return
				}
				if n != 8000 {
					errc <- fmt.Errorf("got %d groups, want 8000", n)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if d := storeReturns.Load() - before; d != workers*reps {
		t.Fatalf("store returned %d times for %d executions", d, workers*reps)
	}
}

// TestParallelCancelMidMerge cancels mid-stream on every parallel
// cursor path: the stream must stop with context.Canceled, segment
// workers must be joined by Close, and the pooled store returned
// exactly once.
func TestParallelCancelMidMerge(t *testing.T) {
	forceParallelThresholds(t)
	db := bigDB(t, 20000)
	eng := &Engine{PartialAgg: true, Parallelism: 4}
	cases := []struct {
		name string
		mk   func() *query.Query
	}{
		{"flat-ordered", spjQuery},
		{"grouped", groupedQuery},
		{"agg-ordered", aggOrderedQuery},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cancelMidStream(t, c.name, func(ctx context.Context) (*Result, error) {
				return eng.RunContext(ctx, c.mk(), db)
			})
		})
	}
}

// TestParallelResultCloseJoinsWorkers closes the Result while a
// parallel Rows is still open: the segment workers must be joined
// before the store is recycled (meaningful under -race), and the open
// Rows must refuse with ErrClosed.
func TestParallelResultCloseJoinsWorkers(t *testing.T) {
	forceParallelThresholds(t)
	db := bigDB(t, 20000)
	eng := &Engine{PartialAgg: true, Parallelism: 4}
	prep, err := eng.Prepare(spjQuery(), db)
	if err != nil {
		t.Fatal(err)
	}
	before := storeReturns.Load()
	res, err := prep.Exec(db)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Rows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if !rows.Next() {
			t.Fatalf("stream ended after %d rows", i)
		}
	}
	res.Close() // store recycles now; workers must already be joined
	if rows.Next() {
		t.Fatal("Next succeeded on a closed Result")
	}
	if !errors.Is(rows.Err(), ErrClosed) {
		t.Fatalf("rows.Err() = %v, want ErrClosed", rows.Err())
	}
	rows.Close()
	if d := storeReturns.Load() - before; d != 1 {
		t.Fatalf("store returned %d times, want exactly 1", d)
	}
}

// TestParallelEarlyStopJoinsWorkers stops a ForEach stream early (the
// LIMIT-style exit) at every parallelism level; workers must be joined
// and the pool balanced.
func TestParallelEarlyStopJoinsWorkers(t *testing.T) {
	forceParallelThresholds(t)
	db := bigDB(t, 20000)
	for _, par := range []int{1, 2, 8} {
		eng := &Engine{PartialAgg: true, Parallelism: par}
		before := storeReturns.Load()
		res, err := eng.Run(spjQuery(), db)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		err = res.ForEach(func(relation.Tuple) bool {
			n++
			return n < 10
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Close()
		if d := storeReturns.Load() - before; d != 1 {
			t.Fatalf("P=%d: store returned %d times, want exactly 1", par, d)
		}
	}
}
