// Package relation implements in-memory relations: schemas, tuples and the
// basic operations (projection, selection, natural join, sorting,
// deduplication) that both the factorised engine and the relational
// baseline engine build on, plus CSV import/export.
//
// Relations use set semantics at the API boundary (Project deduplicates)
// but tuples slices may transiently hold duplicates inside engines that
// need bag semantics for aggregation.
package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/factordb/fdb/internal/values"
)

// Tuple is one row; the i-th entry is the value of the i-th schema
// attribute.
type Tuple []values.Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Key returns a stable injective encoding of the tuple, usable as a hash
// map key.
func (t Tuple) Key() string {
	var b []byte
	for _, v := range t {
		b = v.AppendKey(b)
	}
	return string(b)
}

// Compare orders tuples lexicographically component-wise.
func Compare(a, b Tuple) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := values.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Relation is a named, ordered multiset of tuples over a fixed attribute
// list. Attribute names are unique within a relation.
type Relation struct {
	Name   string
	Attrs  []string
	Tuples []Tuple
}

// New creates a relation and validates that attribute names are unique and
// all tuples have the right arity.
func New(name string, attrs []string, tuples []Tuple) (*Relation, error) {
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if a == "" {
			return nil, fmt.Errorf("relation %s: empty attribute name", name)
		}
		if seen[a] {
			return nil, fmt.Errorf("relation %s: duplicate attribute %q", name, a)
		}
		seen[a] = true
	}
	for i, t := range tuples {
		if len(t) != len(attrs) {
			return nil, fmt.Errorf("relation %s: tuple %d has arity %d, want %d", name, i, len(t), len(attrs))
		}
	}
	return &Relation{Name: name, Attrs: attrs, Tuples: tuples}, nil
}

// MustNew is New but panics on error; intended for tests and literals.
func MustNew(name string, attrs []string, tuples []Tuple) *Relation {
	r, err := New(name, attrs, tuples)
	if err != nil {
		panic(err)
	}
	return r
}

// Cardinality returns the number of tuples.
func (r *Relation) Cardinality() int { return len(r.Tuples) }

// ColIndex returns the position of attribute a, or -1 if absent.
func (r *Relation) ColIndex(a string) int {
	for i, x := range r.Attrs {
		if x == a {
			return i
		}
	}
	return -1
}

// HasAttr reports whether the relation has attribute a.
func (r *Relation) HasAttr(a string) bool { return r.ColIndex(a) >= 0 }

// Clone returns a deep copy (tuples are copied; values are immutable).
func (r *Relation) Clone() *Relation {
	ts := make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		ts[i] = t.Clone()
	}
	attrs := make([]string, len(r.Attrs))
	copy(attrs, r.Attrs)
	return &Relation{Name: r.Name, Attrs: attrs, Tuples: ts}
}

// Project returns the projection onto attrs, deduplicated (set
// semantics). The attribute order of the result follows attrs.
func (r *Relation) Project(attrs ...string) (*Relation, error) {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.ColIndex(a)
		if j < 0 {
			return nil, fmt.Errorf("project: relation %s has no attribute %q", r.Name, a)
		}
		idx[i] = j
	}
	seen := make(map[string]bool, len(r.Tuples))
	out := make([]Tuple, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		p := make(Tuple, len(idx))
		for i, j := range idx {
			p[i] = t[j]
		}
		k := p.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, p)
		}
	}
	return New(r.Name, attrs, out)
}

// Select returns the tuples satisfying pred, sharing tuple storage with r.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := make([]Tuple, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		if pred(t) {
			out = append(out, t)
		}
	}
	return &Relation{Name: r.Name, Attrs: r.Attrs, Tuples: out}
}

// Dedup returns the relation with duplicate tuples removed, preserving
// first-occurrence order.
func (r *Relation) Dedup() *Relation {
	seen := make(map[string]bool, len(r.Tuples))
	out := make([]Tuple, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		k := t.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, t)
		}
	}
	return &Relation{Name: r.Name, Attrs: r.Attrs, Tuples: out}
}

// OrderKey names an attribute to sort by and its direction.
type OrderKey struct {
	Attr string
	Desc bool
}

// Sort sorts the relation in place lexicographically by the given keys,
// breaking remaining ties by full-tuple comparison so the result is
// deterministic.
func (r *Relation) Sort(keys ...OrderKey) error {
	idx := make([]int, len(keys))
	for i, k := range keys {
		j := r.ColIndex(k.Attr)
		if j < 0 {
			return fmt.Errorf("sort: relation %s has no attribute %q", r.Name, k.Attr)
		}
		idx[i] = j
	}
	sort.SliceStable(r.Tuples, func(x, y int) bool {
		a, b := r.Tuples[x], r.Tuples[y]
		for i, j := range idx {
			c := values.Compare(a[j], b[j])
			if c != 0 {
				if keys[i].Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return Compare(a, b) < 0
	})
	return nil
}

// NaturalJoin computes the natural join of r and s via a hash join on
// their common attributes. The result schema lists r's attributes followed
// by s's non-shared attributes. Joining on no common attributes degrades
// to the Cartesian product.
func NaturalJoin(r, s *Relation) *Relation {
	var shared []string
	for _, a := range r.Attrs {
		if s.HasAttr(a) {
			shared = append(shared, a)
		}
	}
	rIdx := make([]int, len(shared))
	sIdx := make([]int, len(shared))
	for i, a := range shared {
		rIdx[i] = r.ColIndex(a)
		sIdx[i] = s.ColIndex(a)
	}
	var sExtra []int
	var outAttrs []string
	outAttrs = append(outAttrs, r.Attrs...)
	for j, a := range s.Attrs {
		if !r.HasAttr(a) {
			sExtra = append(sExtra, j)
			outAttrs = append(outAttrs, a)
		}
	}
	// Build side: the smaller relation.
	build, probe := s, r
	buildKey, probeKey := sIdx, rIdx
	if len(r.Tuples) < len(s.Tuples) {
		build, probe = r, s
		buildKey, probeKey = rIdx, sIdx
	}
	ht := make(map[string][]Tuple, len(build.Tuples))
	var kb []byte
	for _, t := range build.Tuples {
		kb = kb[:0]
		for _, j := range buildKey {
			kb = t[j].AppendKey(kb)
		}
		k := string(kb)
		ht[k] = append(ht[k], t)
	}
	out := make([]Tuple, 0, len(probe.Tuples))
	for _, t := range probe.Tuples {
		kb = kb[:0]
		for _, j := range probeKey {
			kb = t[j].AppendKey(kb)
		}
		matches := ht[string(kb)]
		for _, m := range matches {
			var rt, st Tuple
			if probe == r {
				rt, st = t, m
			} else {
				rt, st = m, t
			}
			o := make(Tuple, 0, len(outAttrs))
			o = append(o, rt...)
			for _, j := range sExtra {
				o = append(o, st[j])
			}
			out = append(out, o)
		}
	}
	name := r.Name + "⋈" + s.Name
	return &Relation{Name: name, Attrs: outAttrs, Tuples: out}
}

// NaturalJoinAll left-folds NaturalJoin over the given relations. It
// panics on an empty argument list.
func NaturalJoinAll(rs ...*Relation) *Relation {
	if len(rs) == 0 {
		panic("relation: NaturalJoinAll of zero relations")
	}
	acc := rs[0]
	for _, r := range rs[1:] {
		acc = NaturalJoin(acc, r)
	}
	return acc
}

// EqualAsSets reports whether r and s contain the same set of tuples over
// the same attribute list, ignoring tuple order and duplicates, after
// aligning s's columns to r's attribute order.
func EqualAsSets(r, s *Relation) bool {
	if len(r.Attrs) != len(s.Attrs) {
		return false
	}
	perm := make([]int, len(r.Attrs))
	for i, a := range r.Attrs {
		j := s.ColIndex(a)
		if j < 0 {
			return false
		}
		perm[i] = j
	}
	set := make(map[string]bool)
	for _, t := range r.Tuples {
		set[t.Key()] = true
	}
	other := make(map[string]bool)
	var kb []byte
	for _, t := range s.Tuples {
		kb = kb[:0]
		for _, j := range perm {
			kb = t[j].AppendKey(kb)
		}
		other[string(kb)] = true
	}
	if len(set) != len(other) {
		return false
	}
	for k := range set {
		if !other[k] {
			return false
		}
	}
	return true
}

// String renders the relation as a small table; intended for examples and
// debugging, not large data.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) [%d tuples]\n", r.Name, strings.Join(r.Attrs, ", "), len(r.Tuples))
	for i, t := range r.Tuples {
		if i == 20 {
			fmt.Fprintf(&b, "  … %d more\n", len(r.Tuples)-20)
			break
		}
		parts := make([]string, len(t))
		for j, v := range t {
			parts[j] = v.String()
		}
		fmt.Fprintf(&b, "  (%s)\n", strings.Join(parts, ", "))
	}
	return b.String()
}

// ReadCSV reads a relation from CSV data with a header row of attribute
// names. Fields are parsed with values.Parse.
func ReadCSV(name string, src io.Reader) (*Relation, error) {
	cr := csv.NewReader(src)
	cr.ReuseRecord = false
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation %s: reading CSV header: %w", name, err)
	}
	var tuples []Tuple
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation %s: reading CSV: %w", name, err)
		}
		t := make(Tuple, len(rec))
		for i, f := range rec {
			t[i] = values.Parse(f)
		}
		tuples = append(tuples, t)
	}
	return New(name, header, tuples)
}

// WriteCSV writes the relation as CSV with a header row.
func (r *Relation) WriteCSV(dst io.Writer) error {
	cw := csv.NewWriter(dst)
	if err := cw.Write(r.Attrs); err != nil {
		return err
	}
	rec := make([]string, len(r.Attrs))
	for _, t := range r.Tuples {
		for i, v := range t {
			rec[i] = v.String()
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
