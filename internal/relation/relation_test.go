package relation

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/factordb/fdb/internal/values"
)

func iv(i int64) values.Value  { return values.NewInt(i) }
func sv(s string) values.Value { return values.NewString(s) }

func pizzeriaOrders() *Relation {
	return MustNew("Orders", []string{"customer", "date", "pizza"}, []Tuple{
		{sv("Mario"), sv("Monday"), sv("Capricciosa")},
		{sv("Mario"), sv("Tuesday"), sv("Margherita")},
		{sv("Pietro"), sv("Friday"), sv("Hawaii")},
		{sv("Lucia"), sv("Friday"), sv("Hawaii")},
		{sv("Mario"), sv("Friday"), sv("Capricciosa")},
	})
}

func pizzeriaPizzas() *Relation {
	return MustNew("Pizzas", []string{"pizza", "item"}, []Tuple{
		{sv("Margherita"), sv("base")},
		{sv("Capricciosa"), sv("base")},
		{sv("Capricciosa"), sv("ham")},
		{sv("Capricciosa"), sv("mushrooms")},
		{sv("Hawaii"), sv("base")},
		{sv("Hawaii"), sv("ham")},
		{sv("Hawaii"), sv("pineapple")},
	})
}

func pizzeriaItems() *Relation {
	return MustNew("Items", []string{"item", "price"}, []Tuple{
		{sv("base"), iv(6)},
		{sv("ham"), iv(1)},
		{sv("mushrooms"), iv(1)},
		{sv("pineapple"), iv(2)},
	})
}

func TestNewValidation(t *testing.T) {
	if _, err := New("R", []string{"a", "a"}, nil); err == nil {
		t.Error("duplicate attribute should fail")
	}
	if _, err := New("R", []string{""}, nil); err == nil {
		t.Error("empty attribute should fail")
	}
	if _, err := New("R", []string{"a"}, []Tuple{{iv(1), iv(2)}}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestColIndex(t *testing.T) {
	r := pizzeriaOrders()
	if r.ColIndex("date") != 1 {
		t.Error("date should be column 1")
	}
	if r.ColIndex("missing") != -1 {
		t.Error("missing should be -1")
	}
	if !r.HasAttr("pizza") || r.HasAttr("topping") {
		t.Error("HasAttr wrong")
	}
}

func TestProjectDeduplicates(t *testing.T) {
	r := pizzeriaOrders()
	p, err := r.Project("customer")
	if err != nil {
		t.Fatal(err)
	}
	if p.Cardinality() != 3 {
		t.Errorf("distinct customers = %d, want 3", p.Cardinality())
	}
	if _, err := r.Project("nope"); err == nil {
		t.Error("projecting missing attribute should fail")
	}
	// Column reordering.
	p2, err := r.Project("pizza", "customer")
	if err != nil {
		t.Fatal(err)
	}
	if p2.Attrs[0] != "pizza" || p2.Attrs[1] != "customer" {
		t.Error("projection should follow requested order")
	}
}

func TestSelect(t *testing.T) {
	r := pizzeriaOrders()
	f := r.Select(func(tp Tuple) bool { return tp[1].Str() == "Friday" })
	if f.Cardinality() != 3 {
		t.Errorf("Friday orders = %d, want 3", f.Cardinality())
	}
}

func TestNaturalJoinPizzeria(t *testing.T) {
	// The paper's R = Orders ⋈ Pizzas ⋈ Items has 13 tuples:
	// Capricciosa: 2 orders × 3 items, Hawaii: 2 × 3, Margherita: 1 × 1.
	j := NaturalJoinAll(pizzeriaOrders(), pizzeriaPizzas(), pizzeriaItems())
	if j.Cardinality() != 13 {
		t.Errorf("|R| = %d, want 13", j.Cardinality())
	}
	if len(j.Attrs) != 5 {
		t.Errorf("join schema = %v, want 5 attrs", j.Attrs)
	}
}

func TestNaturalJoinNoSharedIsProduct(t *testing.T) {
	a := MustNew("A", []string{"x"}, []Tuple{{iv(1)}, {iv(2)}})
	b := MustNew("B", []string{"y"}, []Tuple{{iv(3)}, {iv(4)}, {iv(5)}})
	j := NaturalJoin(a, b)
	if j.Cardinality() != 6 {
		t.Errorf("product = %d, want 6", j.Cardinality())
	}
}

func TestNaturalJoinEmptySide(t *testing.T) {
	a := MustNew("A", []string{"x"}, nil)
	b := MustNew("B", []string{"x", "y"}, []Tuple{{iv(1), iv(2)}})
	if NaturalJoin(a, b).Cardinality() != 0 {
		t.Error("join with empty relation should be empty")
	}
	if NaturalJoin(b, a).Cardinality() != 0 {
		t.Error("join with empty relation should be empty (other side)")
	}
}

func TestSortAscDesc(t *testing.T) {
	r := pizzeriaOrders().Clone()
	if err := r.Sort(OrderKey{Attr: "customer"}, OrderKey{Attr: "date", Desc: true}); err != nil {
		t.Fatal(err)
	}
	if r.Tuples[0][0].Str() != "Lucia" {
		t.Errorf("first customer = %v, want Lucia", r.Tuples[0][0])
	}
	// Mario's dates descending: Tuesday, Monday, Friday.
	var marioDates []string
	for _, tp := range r.Tuples {
		if tp[0].Str() == "Mario" {
			marioDates = append(marioDates, tp[1].Str())
		}
	}
	want := []string{"Tuesday", "Monday", "Friday"}
	for i := range want {
		if marioDates[i] != want[i] {
			t.Errorf("mario dates = %v, want %v", marioDates, want)
			break
		}
	}
	if err := r.Sort(OrderKey{Attr: "bogus"}); err == nil {
		t.Error("sorting by missing attribute should fail")
	}
}

func TestDedup(t *testing.T) {
	r := MustNew("R", []string{"a"}, []Tuple{{iv(1)}, {iv(1)}, {iv(2)}})
	if d := r.Dedup(); d.Cardinality() != 2 {
		t.Errorf("dedup = %d, want 2", d.Cardinality())
	}
}

func TestEqualAsSets(t *testing.T) {
	a := MustNew("A", []string{"x", "y"}, []Tuple{{iv(1), iv(2)}, {iv(3), iv(4)}})
	b := MustNew("B", []string{"y", "x"}, []Tuple{{iv(4), iv(3)}, {iv(2), iv(1)}, {iv(2), iv(1)}})
	if !EqualAsSets(a, b) {
		t.Error("a and b should be equal as sets (column order ignored)")
	}
	c := MustNew("C", []string{"x", "y"}, []Tuple{{iv(1), iv(2)}})
	if EqualAsSets(a, c) {
		t.Error("a and c differ")
	}
	d := MustNew("D", []string{"x", "z"}, []Tuple{{iv(1), iv(2)}, {iv(3), iv(4)}})
	if EqualAsSets(a, d) {
		t.Error("different schemas are not equal")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	r := pizzeriaItems()
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("Items", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !EqualAsSets(r, back) {
		t.Errorf("CSV round trip mismatch:\n%v\n%v", r, back)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV("R", strings.NewReader("")); err == nil {
		t.Error("empty CSV should fail (no header)")
	}
	if _, err := ReadCSV("R", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged CSV should fail")
	}
}

func TestTupleCompare(t *testing.T) {
	a := Tuple{iv(1), iv(2)}
	b := Tuple{iv(1), iv(3)}
	if Compare(a, b) != -1 || Compare(b, a) != 1 || Compare(a, a) != 0 {
		t.Error("tuple compare wrong")
	}
	if Compare(Tuple{iv(1)}, a) != -1 {
		t.Error("shorter tuple with equal prefix sorts first")
	}
}

func randomRelation(r *rand.Rand, attrs []string, n, domain int) *Relation {
	ts := make([]Tuple, n)
	for i := range ts {
		t := make(Tuple, len(attrs))
		for j := range t {
			t[j] = iv(int64(r.Intn(domain)))
		}
		ts[i] = t
	}
	return MustNew("R", attrs, ts)
}

// Join commutativity as a set property.
func TestJoinCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, []string{"x", "y"}, rng.Intn(20), 4)
		b := randomRelation(rng, []string{"y", "z"}, rng.Intn(20), 4)
		ab := NaturalJoin(a, b).Dedup()
		ba := NaturalJoin(b, a).Dedup()
		return EqualAsSets(ab, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Nested-loop reference join must agree with the hash join.
func TestJoinAgainstNestedLoopProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomRelation(rng, []string{"x", "y"}, rng.Intn(25), 3)
		b := randomRelation(rng, []string{"y", "z"}, rng.Intn(25), 3)
		got := NaturalJoin(a, b)
		// Reference: nested loop.
		var ref []Tuple
		for _, ta := range a.Tuples {
			for _, tb := range b.Tuples {
				if values.Compare(ta[1], tb[0]) == 0 {
					ref = append(ref, Tuple{ta[0], ta[1], tb[1]})
				}
			}
		}
		want := MustNew("W", []string{"x", "y", "z"}, ref)
		return len(got.Tuples) == len(ref) && EqualAsSets(got.Dedup(), want.Dedup())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
