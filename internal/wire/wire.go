// Package wire defines the fdb NDJSON wire protocol: the typed frames
// exchanged between clients, the query server (internal/server) and the
// scatter-gather coordinator (internal/cluster). The format is
// specified normatively in docs/PROTOCOL.md; this package is its
// reference implementation, and every frame type here has an
// encode/decode round-trip test.
//
// A streaming query response is a sequence of newline-delimited JSON
// values:
//
//	{"columns":["a","b"],"cached":false}   header  (exactly one, first)
//	[1,"x"]                                row     (zero or more)
//	{"rowCount":1,"elapsedMillis":0.42}    trailer (exactly one, last,
//	                                        unless the stream was cut)
//
// Errors detected before the header travel as an HTTP error status with
// an {"error":"..."} body; errors detected mid-stream travel in the
// trailer's "error" field, because the HTTP status is already written.
// A stream that ends without a trailer was cancelled mid-row and must
// be discarded.
//
// Frames are classified structurally, not positionally: a line opening
// with '[' is a row; an object with a "columns" key is a header;
// any other object is a trailer (or, on a non-200 response, an error
// body). This keeps the protocol self-describing for proxies — the
// coordinator stitches worker streams without tracking position.
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Version is the NDJSON protocol version implemented by this package,
// as specified in docs/PROTOCOL.md. Version 1 covers the header, row,
// trailer and error frames plus the shard-fanout extensions (the
// /shard/install endpoint and offset-resume semantics); it is fully
// backward compatible with the pre-versioned streams shipped by
// earlier servers.
const Version = 1

// ContentType is the MIME type that selects the streaming NDJSON
// response on POST /query (via the Accept header) and marks one on the
// response Content-Type.
const ContentType = "application/x-ndjson"

// QueryRequest is the POST /query body.
type QueryRequest struct {
	// SQL is the SELECT statement to execute.
	SQL string `json:"sql"`
	// DB names the target database; empty selects the default.
	DB string `json:"db,omitempty"`
}

// Header is the first frame of a streaming response.
type Header struct {
	// Columns names the result columns in output order.
	Columns []string `json:"columns"`
	// Cached reports whether the statement hit the server's plan cache
	// (on a coordinator: its distribution-strategy cache).
	Cached bool `json:"cached"`
}

// Row is one result row: a JSON array with one value per column. The
// elements stay raw so a relay (the coordinator) can forward the exact
// bytes it received — stitching must be byte-preserving.
type Row []json.RawMessage

// Trailer is the last frame of a streaming response. An error after
// streaming began cannot change the HTTP status any more, so it
// travels in the trailer's Error field.
type Trailer struct {
	RowCount      int     `json:"rowCount"`
	Truncated     bool    `json:"truncated,omitempty"`
	ElapsedMillis float64 `json:"elapsedMillis"`
	Error         string  `json:"error,omitempty"`
}

// ErrorBody is the JSON body of a non-200 response (and of every
// non-streaming error).
type ErrorBody struct {
	Error string `json:"error"`
}

// Kind classifies a decoded frame.
type Kind uint8

// The frame kinds of a streaming response.
const (
	KindHeader Kind = iota
	KindRow
	KindTrailer
)

// Classify determines the frame kind of one NDJSON line without fully
// decoding it: '[' opens a row; an object containing a "columns" key is
// a header; any other object is a trailer. It returns an error for
// anything else (the line is then not part of a valid stream).
func Classify(line []byte) (Kind, error) {
	t := bytes.TrimLeft(line, " \t\r\n")
	if len(t) == 0 {
		return 0, fmt.Errorf("wire: empty frame")
	}
	switch t[0] {
	case '[':
		return KindRow, nil
	case '{':
		// Headers are distinguished by their mandatory "columns" key.
		// Probing the raw bytes first avoids decoding every row-sized
		// trailer candidate twice; the probe is verified by a real
		// decode so a row value containing the text never misleads.
		if bytes.Contains(t, []byte(`"columns"`)) {
			var m map[string]json.RawMessage
			if err := json.Unmarshal(t, &m); err != nil {
				return 0, fmt.Errorf("wire: bad frame: %w", err)
			}
			if _, ok := m["columns"]; ok {
				return KindHeader, nil
			}
		}
		return KindTrailer, nil
	default:
		return 0, fmt.Errorf("wire: bad frame start %q", t[0])
	}
}

// DecodeHeader decodes a header frame.
func DecodeHeader(line []byte) (Header, error) {
	var h Header
	if err := json.Unmarshal(line, &h); err != nil {
		return Header{}, fmt.Errorf("wire: bad header: %w", err)
	}
	if h.Columns == nil {
		return Header{}, fmt.Errorf("wire: header has no columns")
	}
	return h, nil
}

// DecodeRow decodes a row frame, keeping each column value as its raw
// JSON bytes.
func DecodeRow(line []byte) (Row, error) {
	var r Row
	if err := json.Unmarshal(line, &r); err != nil {
		return nil, fmt.Errorf("wire: bad row: %w", err)
	}
	return r, nil
}

// DecodeTrailer decodes a trailer frame.
func DecodeTrailer(line []byte) (Trailer, error) {
	var t Trailer
	if err := json.Unmarshal(line, &t); err != nil {
		return Trailer{}, fmt.Errorf("wire: bad trailer: %w", err)
	}
	return t, nil
}

// DecodeError decodes a non-200 response body.
func DecodeError(body []byte) (ErrorBody, error) {
	var e ErrorBody
	if err := json.Unmarshal(body, &e); err != nil {
		return ErrorBody{}, fmt.Errorf("wire: bad error body: %w", err)
	}
	return e, nil
}

// AppendRow appends the NDJSON encoding of a row assembled from raw
// column values — "[c1,c2,…]\n" — to dst. It is the byte-preserving
// counterpart of json.Encoder.Encode(Row): forwarded columns keep the
// exact bytes they arrived with.
func AppendRow(dst []byte, cols []json.RawMessage) []byte {
	dst = append(dst, '[')
	for i, c := range cols {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, c...)
	}
	return append(dst, ']', '\n')
}
