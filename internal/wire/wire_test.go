package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestHeaderRoundTrip pins the header frame encoding and its decode.
func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Columns: []string{"customer", "revenue"}, Cached: true}
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"columns":["customer","revenue"],"cached":true}`
	if string(b) != want {
		t.Fatalf("header encoding = %s, want %s", b, want)
	}
	k, err := Classify(b)
	if err != nil || k != KindHeader {
		t.Fatalf("Classify(header) = %v, %v", k, err)
	}
	got, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cached != h.Cached || len(got.Columns) != 2 || got.Columns[0] != "customer" {
		t.Fatalf("decoded header %+v, want %+v", got, h)
	}
}

// TestRowRoundTrip pins the row frame: decode keeps raw column bytes and
// AppendRow re-emits them unchanged.
func TestRowRoundTrip(t *testing.T) {
	line := []byte(`[1,"x <y>",2.5,null,true]`)
	k, err := Classify(line)
	if err != nil || k != KindRow {
		t.Fatalf("Classify(row) = %v, %v", k, err)
	}
	r, err := DecodeRow(line)
	if err != nil {
		t.Fatal(err)
	}
	if len(r) != 5 {
		t.Fatalf("row has %d columns, want 5", len(r))
	}
	out := AppendRow(nil, r)
	if want := append(append([]byte{}, line...), '\n'); !bytes.Equal(out, want) {
		t.Fatalf("AppendRow = %q, want %q", out, want)
	}
	// An empty row is legal ("SELECT" of zero columns never happens, but
	// the framing must not depend on arity).
	if got := AppendRow(nil, nil); string(got) != "[]\n" {
		t.Fatalf("AppendRow(nil) = %q", got)
	}
}

// TestTrailerRoundTrip pins the trailer frame including the mid-stream
// error field and omitempty behaviour.
func TestTrailerRoundTrip(t *testing.T) {
	tr := Trailer{RowCount: 7, ElapsedMillis: 1.5}
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"rowCount":7,"elapsedMillis":1.5}`
	if string(b) != want {
		t.Fatalf("trailer encoding = %s, want %s", b, want)
	}
	k, err := Classify(b)
	if err != nil || k != KindTrailer {
		t.Fatalf("Classify(trailer) = %v, %v", k, err)
	}
	got, err := DecodeTrailer(b)
	if err != nil || got.RowCount != 7 || got.ElapsedMillis != 1.5 {
		t.Fatalf("decoded trailer %+v, err %v", got, err)
	}

	tr2 := Trailer{RowCount: 1, Truncated: true, Error: "boom"}
	b2, _ := json.Marshal(tr2)
	got2, err := DecodeTrailer(b2)
	if err != nil || !got2.Truncated || got2.Error != "boom" {
		t.Fatalf("decoded trailer %+v, err %v", got2, err)
	}
}

// TestErrorBodyRoundTrip pins the non-200 error body.
func TestErrorBodyRoundTrip(t *testing.T) {
	b, err := json.Marshal(ErrorBody{Error: `unknown database "x"`})
	if err != nil {
		t.Fatal(err)
	}
	e, err := DecodeError(b)
	if err != nil || e.Error != `unknown database "x"` {
		t.Fatalf("decoded error %+v, err %v", e, err)
	}
}

// TestClassifyHostileLines: classification is structural and defensive —
// a row containing the text "columns" is still a row, garbage errors.
func TestClassifyHostileLines(t *testing.T) {
	if k, err := Classify([]byte(`["columns", "contains \"columns\" text"]`)); err != nil || k != KindRow {
		t.Fatalf("row with columns text: %v, %v", k, err)
	}
	// A trailer-shaped object mentioning "columns" in a string value is
	// still a trailer: the probe is verified by a structural decode.
	if k, err := Classify([]byte(`{"rowCount":1,"error":"missing \"columns\" key"}`)); err != nil || k != KindTrailer {
		t.Fatalf("trailer with columns text: %v, %v", k, err)
	}
	for _, bad := range []string{"", "   ", "x", `"just a string"`, "42"} {
		if _, err := Classify([]byte(bad)); err == nil {
			t.Fatalf("Classify(%q) accepted", bad)
		}
	}
	if _, err := DecodeHeader([]byte(`{"cached":true}`)); err == nil {
		t.Fatal("DecodeHeader accepted a header with no columns")
	}
	if _, err := DecodeRow([]byte(`{"not":"a row"}`)); err == nil {
		t.Fatal("DecodeRow accepted an object")
	}
}

// TestQueryRequestRoundTrip pins the request body frame.
func TestQueryRequestRoundTrip(t *testing.T) {
	b, err := json.Marshal(QueryRequest{SQL: "SELECT 1", DB: "shop"})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"sql":"SELECT 1","db":"shop"}`
	if string(b) != want {
		t.Fatalf("request encoding = %s, want %s", b, want)
	}
	var q QueryRequest
	if err := json.Unmarshal(b, &q); err != nil || q.SQL != "SELECT 1" || q.DB != "shop" {
		t.Fatalf("decoded request %+v, err %v", q, err)
	}
	// db is omitted when empty — the default-database form.
	b2, _ := json.Marshal(QueryRequest{SQL: "SELECT 1"})
	if string(b2) != `{"sql":"SELECT 1"}` {
		t.Fatalf("request encoding = %s", b2)
	}
}
