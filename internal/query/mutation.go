package query

import (
	"fmt"
	"strings"

	"github.com/factordb/fdb/internal/values"
)

// MutOp identifies a data-modification operation.
type MutOp uint8

// The supported mutation operations.
const (
	// OpInsert appends rows to a relation.
	OpInsert MutOp = iota
	// OpDelete removes the rows matching every filter (all rows when no
	// filter is given).
	OpDelete
	// OpUpsert replaces rows keyed on the relation's first attribute:
	// for each new row, existing rows with an equal first-attribute
	// value are removed, then the new row is inserted.
	OpUpsert
)

// String returns the SQL verb of the operation.
func (op MutOp) String() string {
	switch op {
	case OpInsert:
		return "INSERT"
	case OpDelete:
		return "DELETE"
	case OpUpsert:
		return "UPSERT"
	default:
		return fmt.Sprintf("mutop(%d)", uint8(op))
	}
}

// Statement is any parsed SQL statement: a *Query (SELECT) or a
// *Mutation (INSERT / DELETE / UPSERT).
type Statement interface{ stmt() }

func (*Query) stmt()    {}
func (*Mutation) stmt() {}

// Mutation is one logical data-modification statement against a single
// relation.
type Mutation struct {
	// Op is the operation.
	Op MutOp
	// Relation names the target relation.
	Relation string
	// Rows holds the literal rows of INSERT and UPSERT, one slice of
	// values per row, all of the relation's arity.
	Rows [][]values.Value
	// Where holds the constant selections of DELETE (conjunctive; empty
	// means every row matches).
	Where []Filter
}

// Validate performs the structural checks that do not need a catalogue:
// the target is named, INSERT/UPSERT carry at least one row of uniform
// arity, DELETE carries no rows.
func (m *Mutation) Validate() error {
	if m.Relation == "" {
		return fmt.Errorf("query: mutation has no target relation")
	}
	switch m.Op {
	case OpInsert, OpUpsert:
		if len(m.Rows) == 0 {
			return fmt.Errorf("query: %s %s without rows", m.Op, m.Relation)
		}
		arity := len(m.Rows[0])
		if arity == 0 {
			return fmt.Errorf("query: %s %s with an empty row", m.Op, m.Relation)
		}
		for i, r := range m.Rows {
			if len(r) != arity {
				return fmt.Errorf("query: %s %s: row %d has %d values, row 0 has %d", m.Op, m.Relation, i, len(r), arity)
			}
		}
		if len(m.Where) > 0 {
			return fmt.Errorf("query: %s %s does not take WHERE", m.Op, m.Relation)
		}
	case OpDelete:
		if len(m.Rows) > 0 {
			return fmt.Errorf("query: DELETE %s does not take rows", m.Relation)
		}
	default:
		return fmt.Errorf("query: unknown mutation op %d", m.Op)
	}
	return nil
}

// String renders the mutation as canonical SQL.
func (m *Mutation) String() string {
	var b strings.Builder
	switch m.Op {
	case OpDelete:
		fmt.Fprintf(&b, "DELETE FROM %s", m.Relation)
		for i, f := range m.Where {
			if i == 0 {
				b.WriteString(" WHERE ")
			} else {
				b.WriteString(" AND ")
			}
			fmt.Fprintf(&b, "%s %s %s", f.Attr, f.Op, f.Const)
		}
	default:
		fmt.Fprintf(&b, "%s INTO %s VALUES ", m.Op, m.Relation)
		for i, r := range m.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteByte('(')
			for j, v := range r {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(renderValue(v))
			}
			b.WriteByte(')')
		}
	}
	return b.String()
}

// renderValue renders a literal the way the SQL parser would accept it
// back.
func renderValue(v values.Value) string {
	if v.Kind() == values.String {
		return "'" + strings.ReplaceAll(v.Str(), "'", "''") + "'"
	}
	return v.String()
}
