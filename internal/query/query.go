// Package query defines the logical query model of Section 2: queries
// with selections (equalities between attributes and comparisons with
// constants), projections, joins (as products plus equality selections),
// aggregation ϖ_{G;α←F} with group-by, ordering o_L with ascending or
// descending attributes, limit λ_k, and HAVING as a post-selection over
// aggregate outputs.
package query

import (
	"fmt"
	"strings"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/values"
)

// AggFn is a query-level aggregation function. Avg is evaluated as the
// composite (sum, count) pair per Section 3.2.4.
type AggFn uint8

// The supported aggregation functions.
const (
	Count AggFn = iota
	Sum
	Min
	Max
	Avg
)

// String returns the SQL name of the function.
func (f AggFn) String() string {
	switch f {
	case Count:
		return "count"
	case Sum:
		return "sum"
	case Min:
		return "min"
	case Max:
		return "max"
	case Avg:
		return "avg"
	default:
		return fmt.Sprintf("aggfn(%d)", uint8(f))
	}
}

// Aggregate is one aggregation α ← F(A) in the query's ϖ operator.
type Aggregate struct {
	Fn  AggFn
	Arg string // argument attribute; empty for count(*)
	As  string // output attribute name α
}

// String renders e.g. "sum(price) AS revenue".
func (a Aggregate) String() string {
	arg := a.Arg
	if a.Fn == Count && arg == "" {
		arg = "*"
	}
	s := fmt.Sprintf("%s(%s)", a.Fn, arg)
	if a.As != "" {
		s += " AS " + a.As
	}
	return s
}

// OutName returns the output attribute name: the alias if given, else the
// rendered function application.
func (a Aggregate) OutName() string {
	if a.As != "" {
		return a.As
	}
	arg := a.Arg
	if a.Fn == Count && arg == "" {
		arg = "*"
	}
	return fmt.Sprintf("%s(%s)", a.Fn, arg)
}

// Equality is an equality selection A = B between two attributes
// (including join conditions).
type Equality struct {
	A, B string
}

// Filter is a selection with a constant, σ_{Attr op Const}.
type Filter struct {
	Attr  string
	Op    fops.CmpOp
	Const values.Value
}

// OrderItem is one entry of the order-by list, with direction.
type OrderItem struct {
	Attr string
	Desc bool
}

// String renders e.g. "price DESC".
func (o OrderItem) String() string {
	if o.Desc {
		return o.Attr + " DESC"
	}
	return o.Attr
}

// Query is the logical query: a product of named relations restricted by
// equality and constant selections, followed by either a projection (SPJ
// queries) or a grouped aggregation, then ordering, a HAVING-style
// post-selection, and a limit.
type Query struct {
	// Relations names the inputs (interpreted by the engine against its
	// catalogue or a materialised factorised view).
	Relations []string
	// Equalities are attribute equalities (join conditions).
	Equalities []Equality
	// Filters are comparisons with constants.
	Filters []Filter
	// GroupBy lists the grouping attributes G; meaningful only with
	// Aggregates.
	GroupBy []string
	// Aggregates, when non-empty, makes this an aggregation query with
	// output schema GroupBy ++ aggregate outputs.
	Aggregates []Aggregate
	// Projection lists output attributes for non-aggregate queries; empty
	// means all attributes.
	Projection []string
	// OrderBy is the o_L list.
	OrderBy []OrderItem
	// Having are post-selections over aggregate output names.
	Having []Filter
	// Limit is λ_k; 0 means no limit.
	Limit int
	// Offset is the number of leading output tuples (after HAVING, in
	// the requested order) to skip before emitting; 0 means none. The
	// engine skips them in the enumerator without materialising them.
	Offset int
}

// IsAggregate reports whether the query has an aggregation operator.
func (q *Query) IsAggregate() bool { return len(q.Aggregates) > 0 }

// OutputAttrs returns the query's output attribute names in order.
func (q *Query) OutputAttrs() []string {
	if q.IsAggregate() {
		out := append([]string{}, q.GroupBy...)
		for _, a := range q.Aggregates {
			out = append(out, a.OutName())
		}
		return out
	}
	return append([]string{}, q.Projection...)
}

// Validate performs structural checks that do not need a catalogue:
// aggregate arguments present, group-by only with aggregates, order-by
// attributes among outputs, having only on aggregate outputs.
func (q *Query) Validate() error {
	if len(q.Relations) == 0 {
		return fmt.Errorf("query: no input relations")
	}
	if len(q.GroupBy) > 0 && !q.IsAggregate() {
		return fmt.Errorf("query: GROUP BY without aggregates")
	}
	for _, a := range q.Aggregates {
		if a.Fn != Count && a.Arg == "" {
			return fmt.Errorf("query: %s needs an argument attribute", a.Fn)
		}
	}
	outs := map[string]bool{}
	for _, a := range q.OutputAttrs() {
		outs[a] = true
	}
	if q.IsAggregate() {
		for _, o := range q.OrderBy {
			if !outs[o.Attr] {
				return fmt.Errorf("query: ORDER BY %s is not an output attribute", o.Attr)
			}
		}
		aggOuts := map[string]bool{}
		for _, a := range q.Aggregates {
			aggOuts[a.OutName()] = true
		}
		for _, h := range q.Having {
			if !aggOuts[h.Attr] {
				return fmt.Errorf("query: HAVING references %q, not an aggregate output", h.Attr)
			}
		}
	} else if len(q.Having) > 0 {
		return fmt.Errorf("query: HAVING without aggregates")
	}
	if q.Limit < 0 {
		return fmt.Errorf("query: negative limit")
	}
	if q.Offset < 0 {
		return fmt.Errorf("query: negative offset")
	}
	return nil
}

// String renders the query in the paper's algebraic notation.
func (q *Query) String() string {
	var b strings.Builder
	if q.Limit > 0 || q.Offset > 0 {
		// λ_k with an optional skip: λ5+20 reads "skip 20, take 5".
		b.WriteString("λ")
		if q.Limit > 0 {
			fmt.Fprintf(&b, "%d", q.Limit)
		}
		if q.Offset > 0 {
			fmt.Fprintf(&b, "+%d", q.Offset)
		}
		b.WriteString("(")
	}
	if len(q.OrderBy) > 0 {
		items := make([]string, len(q.OrderBy))
		for i, o := range q.OrderBy {
			items[i] = o.String()
		}
		fmt.Fprintf(&b, "o_{%s}(", strings.Join(items, ","))
	}
	if q.IsAggregate() {
		aggs := make([]string, len(q.Aggregates))
		for i, a := range q.Aggregates {
			aggs[i] = a.String()
		}
		fmt.Fprintf(&b, "ϖ_{%s; %s}", strings.Join(q.GroupBy, ","), strings.Join(aggs, ", "))
	} else if len(q.Projection) > 0 {
		fmt.Fprintf(&b, "π_{%s}", strings.Join(q.Projection, ","))
	}
	var conds []string
	for _, e := range q.Equalities {
		conds = append(conds, e.A+"="+e.B)
	}
	for _, f := range q.Filters {
		conds = append(conds, fmt.Sprintf("%s%s%s", f.Attr, f.Op, f.Const))
	}
	if len(conds) > 0 {
		fmt.Fprintf(&b, "σ_{%s}", strings.Join(conds, ","))
	}
	fmt.Fprintf(&b, "(%s)", strings.Join(q.Relations, " × "))
	if len(q.OrderBy) > 0 {
		b.WriteString(")")
	}
	if q.Limit > 0 || q.Offset > 0 {
		b.WriteString(")")
	}
	return b.String()
}
