package query

import (
	"strings"
	"testing"

	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/values"
)

func TestValidate(t *testing.T) {
	ok := &Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"a"},
		Aggregates: []Aggregate{{Fn: Sum, Arg: "b", As: "s"}},
		OrderBy:    []OrderItem{{Attr: "s", Desc: true}},
		Having:     []Filter{{Attr: "s", Op: fops.GT, Const: values.NewInt(1)}},
		Limit:      10,
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid query rejected: %v", err)
	}

	cases := []*Query{
		{},
		{Relations: []string{"R"}, GroupBy: []string{"a"}},
		{Relations: []string{"R"}, Aggregates: []Aggregate{{Fn: Sum}}},
		{Relations: []string{"R"}, Aggregates: []Aggregate{{Fn: Count, As: "n"}},
			OrderBy: []OrderItem{{Attr: "zzz"}}},
		{Relations: []string{"R"}, Aggregates: []Aggregate{{Fn: Count, As: "n"}},
			GroupBy: []string{"g"}, Having: []Filter{{Attr: "g", Op: fops.EQ, Const: values.NewInt(1)}}},
		{Relations: []string{"R"}, Having: []Filter{{Attr: "x", Op: fops.EQ, Const: values.NewInt(1)}}},
		{Relations: []string{"R"}, Limit: -1},
	}
	for i, q := range cases {
		if err := q.Validate(); err == nil {
			t.Errorf("case %d: invalid query accepted: %s", i, q)
		}
	}
}

func TestOutputAttrs(t *testing.T) {
	q := &Query{
		Relations:  []string{"R"},
		GroupBy:    []string{"a", "b"},
		Aggregates: []Aggregate{{Fn: Sum, Arg: "c", As: "s"}, {Fn: Count}},
	}
	got := q.OutputAttrs()
	want := []string{"a", "b", "s", "count(*)"}
	if len(got) != len(want) {
		t.Fatalf("outputs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("outputs[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestStringRendering(t *testing.T) {
	q := &Query{
		Relations:  []string{"Orders", "Items"},
		Equalities: []Equality{{A: "item", B: "item2"}},
		Filters:    []Filter{{Attr: "price", Op: fops.GT, Const: values.NewInt(5)}},
		GroupBy:    []string{"customer"},
		Aggregates: []Aggregate{{Fn: Sum, Arg: "price", As: "revenue"}},
		OrderBy:    []OrderItem{{Attr: "revenue", Desc: true}},
		Limit:      10,
	}
	s := q.String()
	for _, frag := range []string{"λ10", "o_{revenue DESC}", "ϖ_{customer", "sum(price) AS revenue", "item=item2", "price>5", "Orders × Items"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestAggregateNames(t *testing.T) {
	a := Aggregate{Fn: Count}
	if a.OutName() != "count(*)" {
		t.Errorf("OutName = %q", a.OutName())
	}
	b := Aggregate{Fn: Avg, Arg: "x"}
	if b.OutName() != "avg(x)" {
		t.Errorf("OutName = %q", b.OutName())
	}
	if b.String() != "avg(x)" {
		t.Errorf("String = %q", b.String())
	}
	if AggFn(99).String() == "" {
		t.Error("unknown fn should render something")
	}
}
