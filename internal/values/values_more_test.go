package values

import (
	"math"
	"testing"
)

func TestFloatBitPackingRoundTrip(t *testing.T) {
	cases := []float64{
		0, 1.5, -1.5, math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.Inf(1), math.Inf(-1), 1e-300, -2.718281828,
	}
	for _, f := range cases {
		v := NewFloat(f)
		if got := v.Float(); got != f {
			t.Errorf("Float(%v) round-trip = %v", f, got)
		}
		if got := v.AsFloat(); got != f {
			t.Errorf("AsFloat(%v) = %v", f, got)
		}
	}
}

func TestNegativeFloatOrdering(t *testing.T) {
	// The bit-packed representation must not leak into ordering:
	// -1.5 < -0.5 < 0 < 0.5 even though Float64bits(-1.5) > bits(0.5).
	ordered := []Value{
		NewFloat(math.Inf(-1)), NewFloat(-1.5), NewFloat(-0.5),
		NewFloat(0), NewFloat(0.5), NewInt(1), NewFloat(1.25),
		NewFloat(math.Inf(1)),
	}
	for i := 0; i < len(ordered)-1; i++ {
		if Compare(ordered[i], ordered[i+1]) >= 0 {
			t.Errorf("want %v < %v", ordered[i], ordered[i+1])
		}
	}
}

func TestFloatIntCrossArithmetic(t *testing.T) {
	if got := Add(NewFloat(-1.5), NewInt(2)); got.Float() != 0.5 {
		t.Errorf("Add = %v", got)
	}
	if got := Mul(NewFloat(-2), NewFloat(3.5)); got.Float() != -7 {
		t.Errorf("Mul = %v", got)
	}
	if got := MulInt(NewFloat(-2.5), -2); got.Float() != 5 {
		t.Errorf("MulInt = %v", got)
	}
	if got := Min(NewFloat(-3), NewInt(-2)); got.Float() != -3 {
		t.Errorf("Min = %v", got)
	}
}

func TestKindStrings(t *testing.T) {
	kinds := []Kind{Null, Bool, Int, Float, String, Vec, Kind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("empty name for kind %d", k)
		}
	}
}

func TestVecNilSafety(t *testing.T) {
	var v Value // Null
	if v.VecLen() != 0 {
		t.Error("VecLen of non-vec should be 0")
	}
	empty := NewVec(nil)
	if empty.VecLen() != 0 {
		t.Error("empty vec length")
	}
	if Compare(empty, NewVec([]Value{NewInt(1)})) != -1 {
		t.Error("empty vec sorts before non-empty")
	}
}
