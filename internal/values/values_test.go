package values

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindAccessors(t *testing.T) {
	if got := NewInt(7).Int(); got != 7 {
		t.Errorf("Int() = %d, want 7", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float() = %v, want 2.5", got)
	}
	if got := NewString("abc").Str(); got != "abc" {
		t.Errorf("Str() = %q, want abc", got)
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool() round-trip failed")
	}
	if !NullValue().IsNull() {
		t.Error("NullValue should be null")
	}
	var zero Value
	if !zero.IsNull() {
		t.Error("zero Value should be null")
	}
	v := NewVec([]Value{NewInt(1), NewString("x")})
	if v.VecLen() != 2 || v.VecAt(1).Str() != "x" {
		t.Error("Vec accessors failed")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { NewString("a").Int() },
		func() { NewInt(1).Float() },
		func() { NewInt(1).Str() },
		func() { NewInt(1).Bool() },
		func() { NewInt(1).VecAt(0) },
		func() { NewString("a").AsFloat() },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestCompareWithinKinds(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NullValue(), NullValue(), 0},
	}
	for _, tc := range tests {
		if got := Compare(tc.a, tc.b); got != tc.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestCompareAcrossKinds(t *testing.T) {
	// Null < Bool < numeric < String < Vec.
	ordered := []Value{
		NullValue(),
		NewBool(false),
		NewInt(-5),
		NewString(""),
		NewVec([]Value{}),
	}
	for i := 0; i < len(ordered); i++ {
		for j := i + 1; j < len(ordered); j++ {
			if Compare(ordered[i], ordered[j]) >= 0 {
				t.Errorf("want %v < %v", ordered[i], ordered[j])
			}
		}
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	if Compare(NewInt(2), NewFloat(2.0)) != 0 {
		t.Error("Int 2 should equal Float 2.0")
	}
	if Compare(NewInt(2), NewFloat(2.5)) != -1 {
		t.Error("Int 2 should be < Float 2.5")
	}
	if Compare(NewFloat(3.5), NewInt(3)) != 1 {
		t.Error("Float 3.5 should be > Int 3")
	}
}

func TestCompareVecLexicographic(t *testing.T) {
	a := NewVec([]Value{NewInt(1), NewInt(2)})
	b := NewVec([]Value{NewInt(1), NewInt(3)})
	c := NewVec([]Value{NewInt(1)})
	if Compare(a, b) != -1 {
		t.Error("(1,2) < (1,3)")
	}
	if Compare(c, a) != -1 {
		t.Error("(1) < (1,2) by length")
	}
	if Compare(a, a) != 0 {
		t.Error("(1,2) == (1,2)")
	}
}

func TestArithmetic(t *testing.T) {
	if got := Add(NewInt(2), NewInt(3)); got.Kind() != Int || got.Int() != 5 {
		t.Errorf("Add int = %v", got)
	}
	if got := Add(NewInt(2), NewFloat(0.5)); got.Kind() != Float || got.Float() != 2.5 {
		t.Errorf("Add promotes = %v", got)
	}
	if got := Mul(NewInt(4), NewInt(3)); got.Int() != 12 {
		t.Errorf("Mul = %v", got)
	}
	if got := MulInt(NewInt(4), 5); got.Int() != 20 {
		t.Errorf("MulInt = %v", got)
	}
	if got := MulInt(NewFloat(1.5), 2); got.Float() != 3.0 {
		t.Errorf("MulInt float = %v", got)
	}
	if got := Div(NewInt(7), NewInt(2)); got.Float() != 3.5 {
		t.Errorf("Div = %v", got)
	}
	if got := Add(NullValue(), NewInt(9)); got.Int() != 9 {
		t.Errorf("Add null identity = %v", got)
	}
	if got := Mul(NewInt(9), NullValue()); got.Int() != 9 {
		t.Errorf("Mul null identity = %v", got)
	}
	if got := MulInt(NullValue(), 3); !got.IsNull() {
		t.Errorf("MulInt null = %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if got := Min(NewInt(3), NewInt(1)); got.Int() != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(NewString("a"), NewString("b")); got.Str() != "b" {
		t.Errorf("Max = %v", got)
	}
	if got := Min(NullValue(), NewInt(4)); got.Int() != 4 {
		t.Errorf("Min null = %v", got)
	}
	if got := Max(NewInt(4), NullValue()); got.Int() != 4 {
		t.Errorf("Max null = %v", got)
	}
}

func TestString(t *testing.T) {
	tests := []struct {
		v    Value
		want string
	}{
		{NewInt(42), "42"},
		{NewFloat(2.5), "2.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{NullValue(), "NULL"},
		{NewVec([]Value{NewInt(1), NewInt(2)}), "(1,2)"},
	}
	for _, tc := range tests {
		if got := tc.v.String(); got != tc.want {
			t.Errorf("String(%#v) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestParse(t *testing.T) {
	if v := Parse("123"); v.Kind() != Int || v.Int() != 123 {
		t.Errorf("Parse int = %v", v)
	}
	if v := Parse("1.5"); v.Kind() != Float || v.Float() != 1.5 {
		t.Errorf("Parse float = %v", v)
	}
	if v := Parse("hello"); v.Kind() != String || v.Str() != "hello" {
		t.Errorf("Parse string = %v", v)
	}
	if v := Parse(""); v.Kind() != String {
		t.Errorf("Parse empty = %v", v)
	}
}

func TestKeyInjectiveOnEquality(t *testing.T) {
	vs := []Value{
		NewInt(1), NewInt(2), NewFloat(1.5), NewString("1"), NewString("a"),
		NewString("a\x00b"), NewBool(true), NewBool(false), NullValue(),
		NewVec([]Value{NewInt(1), NewString("a")}),
		NewVec([]Value{NewInt(1)}),
	}
	for i, a := range vs {
		for j, b := range vs {
			keyEq := a.Key() == b.Key()
			cmpEq := Compare(a, b) == 0
			if keyEq != cmpEq {
				t.Errorf("key/compare mismatch between vs[%d]=%v and vs[%d]=%v", i, a, j, b)
			}
		}
	}
	// Numeric cross-kind equality must hold for keys too.
	if NewInt(2).Key() != NewFloat(2.0).Key() {
		t.Error("Int 2 and Float 2.0 must share a key")
	}
}

func randomValue(r *rand.Rand, depth int) Value {
	switch k := r.Intn(6); k {
	case 0:
		return NullValue()
	case 1:
		return NewBool(r.Intn(2) == 1)
	case 2:
		return NewInt(int64(r.Intn(200) - 100))
	case 3:
		return NewFloat(float64(r.Intn(200)-100) / 4)
	case 4:
		return NewString(string(rune('a' + r.Intn(26))))
	default:
		if depth > 1 {
			return NewInt(int64(r.Intn(10)))
		}
		n := r.Intn(3)
		vec := make([]Value, n)
		for i := range vec {
			vec[i] = randomValue(r, depth+1)
		}
		return NewVec(vec)
	}
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	// Antisymmetry: Compare(a,b) == -Compare(b,a).
	anti := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r, 0), randomValue(r, 0)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(anti, cfg); err != nil {
		t.Error(err)
	}
	// Transitivity check via sorting: sorted slice must be totally ordered.
	trans := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vs := make([]Value, 20)
		for i := range vs {
			vs[i] = randomValue(r, 0)
		}
		sort.Slice(vs, func(i, j int) bool { return Less(vs[i], vs[j]) })
		for i := 1; i < len(vs); i++ {
			if Compare(vs[i-1], vs[i]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(trans, cfg); err != nil {
		t.Error(err)
	}
}

func TestKeyConsistentWithCompareProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r, 0), randomValue(r, 0)
		return (a.Key() == b.Key()) == (Compare(a, b) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
