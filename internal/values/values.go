// Package values provides the typed scalar values stored in relations and
// factorised representations.
//
// A Value is a small immutable tagged union over int64, float64, string and
// bool, plus a vector kind used for the results of composite aggregation
// functions such as avg = (sum, count) or multi-aggregate queries
// (Section 3.2.4 of the paper). Values carry a total order (Compare) so
// that unions in factorised representations can be kept sorted, and a
// stable string encoding (AppendKey) for use as hash-map keys in the
// relational baseline engine.
package values

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

// The supported value kinds. Null sorts before every other kind; Vec sorts
// after every scalar kind. Int and Float compare numerically with each
// other.
const (
	Null Kind = iota
	Bool
	Int
	Float
	String
	Vec
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case Vec:
		return "vec"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is an immutable typed scalar (or small vector) value.
// The zero Value is Null. The struct is kept small (floats share the
// integer field via their bit pattern; vectors live behind a pointer)
// because values are copied pervasively on comparison-heavy paths.
type Value struct {
	s    string
	i    int64
	vec  *[]Value
	kind Kind
}

// NewInt returns an integer Value.
func NewInt(v int64) Value { return Value{kind: Int, i: v} }

// NewFloat returns a floating-point Value.
func NewFloat(v float64) Value {
	return Value{kind: Float, i: int64(math.Float64bits(v))}
}

// NewString returns a string Value.
func NewString(v string) Value { return Value{kind: String, s: v} }

// NewBool returns a boolean Value.
func NewBool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: Bool, i: i}
}

// NewVec returns a vector Value holding the given components. The slice is
// not copied; callers must not mutate it afterwards.
func NewVec(vs []Value) Value { return Value{kind: Vec, vec: &vs} }

// NullValue returns the null Value.
func NullValue() Value { return Value{} }

// Kind reports the value's dynamic kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == Null }

// Int returns the integer payload. It panics unless the kind is Int.
func (v Value) Int() int64 {
	if v.kind != Int {
		panic(fmt.Sprintf("values: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the floating-point payload. It panics unless the kind is
// Float.
func (v Value) Float() float64 {
	if v.kind != Float {
		panic(fmt.Sprintf("values: Float() on %s value", v.kind))
	}
	return math.Float64frombits(uint64(v.i))
}

// Str returns the string payload. It panics unless the kind is String.
func (v Value) Str() string {
	if v.kind != String {
		panic(fmt.Sprintf("values: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics unless the kind is Bool.
func (v Value) Bool() bool {
	if v.kind != Bool {
		panic(fmt.Sprintf("values: Bool() on %s value", v.kind))
	}
	return v.i != 0
}

// VecAt returns the i-th component of a vector value. It panics unless the
// kind is Vec.
func (v Value) VecAt(i int) Value {
	if v.kind != Vec {
		panic(fmt.Sprintf("values: VecAt() on %s value", v.kind))
	}
	return (*v.vec)[i]
}

// VecLen returns the number of components of a vector value, or 0 for
// non-vector values.
func (v Value) VecLen() int {
	if v.vec == nil {
		return 0
	}
	return len(*v.vec)
}

// Raw returns the value's integer payload field uninterpreted: the
// int64 itself for Int, the Float64bits pattern for Float, 0/1 for
// Bool, 0 for the other kinds. It exists for columnar extraction — the
// frep kind-run index stores one Raw per slab value so vectorised
// kernels can process whole runs as []int64 without per-value dispatch.
func (v Value) Raw() int64 { return v.i }

// IsNumeric reports whether the value is Int or Float.
func (v Value) IsNumeric() bool { return v.kind == Int || v.kind == Float }

// AsFloat converts a numeric or boolean value to float64.
// It panics for other kinds.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case Int, Bool:
		return float64(v.i)
	case Float:
		return math.Float64frombits(uint64(v.i))
	default:
		panic(fmt.Sprintf("values: AsFloat() on %s value", v.kind))
	}
}

// Compare totally orders values: by kind rank first (Null < Bool <
// numeric < String < Vec), except that Int and Float compare numerically
// with each other. Vectors compare lexicographically. The result is -1, 0
// or +1.
func Compare(a, b Value) int {
	if a.kind == Int && b.kind == Int { // hot path
		return cmpInt(a.i, b.i)
	}
	ra, rb := a.rank(), b.rank()
	if ra != rb {
		if ra < rb {
			return -1
		}
		return 1
	}
	switch {
	case ra == rankNumeric:
		if a.kind == Int && b.kind == Int {
			return cmpInt(a.i, b.i)
		}
		return cmpFloat(a.AsFloat(), b.AsFloat())
	case a.kind == Bool:
		return cmpInt(a.i, b.i)
	case a.kind == String:
		return strings.Compare(a.s, b.s)
	case a.kind == Vec:
		av, bv := *a.vec, *b.vec
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		for i := 0; i < n; i++ {
			if c := Compare(av[i], bv[i]); c != 0 {
				return c
			}
		}
		return cmpInt(int64(len(av)), int64(len(bv)))
	default: // Null
		return 0
	}
}

const (
	rankNull = iota
	rankBool
	rankNumeric
	rankString
	rankVec
)

func (v Value) rank() int {
	switch v.kind {
	case Null:
		return rankNull
	case Bool:
		return rankBool
	case Int, Float:
		return rankNumeric
	case String:
		return rankString
	default:
		return rankVec
	}
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Less reports whether a orders strictly before b.
func Less(a, b Value) bool { return Compare(a, b) < 0 }

// Equal reports whether a and b are equal under Compare.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Add returns the numeric sum of a and b. Two Ints produce an Int; any
// Float operand promotes the result to Float. Null is treated as the
// additive identity of the other operand's kind, which lets aggregation
// code fold over possibly-empty accumulators.
func Add(a, b Value) Value {
	if a.IsNull() {
		return b
	}
	if b.IsNull() {
		return a
	}
	if a.kind == Int && b.kind == Int {
		return NewInt(a.i + b.i)
	}
	return NewFloat(a.AsFloat() + b.AsFloat())
}

// Mul returns the numeric product of a and b, with the same promotion
// rules as Add. Null is treated as the multiplicative identity.
func Mul(a, b Value) Value {
	if a.IsNull() {
		return b
	}
	if b.IsNull() {
		return a
	}
	if a.kind == Int && b.kind == Int {
		return NewInt(a.i * b.i)
	}
	return NewFloat(a.AsFloat() * b.AsFloat())
}

// MulInt returns v scaled by the integer factor n, preserving Int-ness.
func MulInt(v Value, n int64) Value {
	if v.IsNull() {
		return v
	}
	if v.kind == Int {
		return NewInt(v.i * n)
	}
	return NewFloat(v.AsFloat() * float64(n))
}

// Div returns a divided by b as a Float. Division by zero yields NaN or
// ±Inf following IEEE semantics.
func Div(a, b Value) Value {
	return NewFloat(a.AsFloat() / b.AsFloat())
}

// Min returns the smaller of a and b under Compare; a Null operand yields
// the other operand.
func Min(a, b Value) Value {
	if a.IsNull() {
		return b
	}
	if b.IsNull() {
		return a
	}
	if Compare(a, b) <= 0 {
		return a
	}
	return b
}

// Max returns the larger of a and b under Compare; a Null operand yields
// the other operand.
func Max(a, b Value) Value {
	if a.IsNull() {
		return b
	}
	if b.IsNull() {
		return a
	}
	if Compare(a, b) >= 0 {
		return a
	}
	return b
}

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case Null:
		return "NULL"
	case Bool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64)
	case String:
		return v.s
	case Vec:
		parts := make([]string, v.VecLen())
		for i := range parts {
			parts[i] = v.VecAt(i).String()
		}
		return "(" + strings.Join(parts, ",") + ")"
	default:
		return "?"
	}
}

// AppendKey appends a stable, injective byte encoding of v to dst,
// suitable for use as (part of) a hash-map key. Distinct values that
// compare equal (for example Int 1 and Float 1.0) encode identically, so
// key equality coincides with Compare equality for join processing.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.kind {
	case Null:
		return append(dst, 0x00)
	case Bool:
		return append(dst, 0x01, byte(v.i))
	case Int, Float:
		// Encode all numerics as float64 bits so Int 1 == Float 1.0.
		// int64 values beyond 2^53 may collide with nearby floats; the
		// workloads in this repository stay far below that.
		dst = append(dst, 0x02)
		bits := math.Float64bits(v.AsFloat())
		for shift := 56; shift >= 0; shift -= 8 {
			dst = append(dst, byte(bits>>uint(shift)))
		}
		return dst
	case String:
		// Length-prefixed so strings with embedded NUL bytes stay
		// injective even inside vector encodings.
		dst = append(dst, 0x03)
		dst = strconv.AppendInt(dst, int64(len(v.s)), 10)
		dst = append(dst, ':')
		return append(dst, v.s...)
	case Vec:
		dst = append(dst, 0x04)
		for _, c := range *v.vec {
			dst = c.AppendKey(dst)
		}
		return append(dst, 0xff)
	default:
		return dst
	}
}

// Key returns AppendKey(nil) as a string.
func (v Value) Key() string { return string(v.AppendKey(nil)) }

// Parse converts a textual field (for example from CSV) to a Value: first
// as an integer, then as a float, then as the bare string. Empty text
// parses as the empty string, not Null.
func Parse(text string) Value {
	if i, err := strconv.ParseInt(text, 10, 64); err == nil {
		return NewInt(i)
	}
	if f, err := strconv.ParseFloat(text, 64); err == nil {
		return NewFloat(f)
	}
	return NewString(text)
}
