package fops

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

func init() { Paranoid = true }

func iv(i int64) values.Value  { return values.NewInt(i) }
func sv(s string) values.Value { return values.NewString(s) }

func ordersRel() *relation.Relation {
	return relation.MustNew("Orders", []string{"customer", "date", "pizza"}, []relation.Tuple{
		{sv("Mario"), sv("Monday"), sv("Capricciosa")},
		{sv("Mario"), sv("Tuesday"), sv("Margherita")},
		{sv("Pietro"), sv("Friday"), sv("Hawaii")},
		{sv("Lucia"), sv("Friday"), sv("Hawaii")},
		{sv("Mario"), sv("Friday"), sv("Capricciosa")},
	})
}

func pizzasRel() *relation.Relation {
	return relation.MustNew("Pizzas", []string{"pizza", "item"}, []relation.Tuple{
		{sv("Margherita"), sv("base")},
		{sv("Capricciosa"), sv("base")},
		{sv("Capricciosa"), sv("ham")},
		{sv("Capricciosa"), sv("mushrooms")},
		{sv("Hawaii"), sv("base")},
		{sv("Hawaii"), sv("ham")},
		{sv("Hawaii"), sv("pineapple")},
	})
}

func itemsRel() *relation.Relation {
	return relation.MustNew("Items", []string{"item", "price"}, []relation.Tuple{
		{sv("base"), iv(6)},
		{sv("ham"), iv(1)},
		{sv("mushrooms"), iv(1)},
		{sv("pineapple"), iv(2)},
	})
}

// pizzeriaFRel builds R = Orders ⋈ Pizzas ⋈ Items factorised over T1.
func pizzeriaFRel(t *testing.T) (*FRel, *relation.Relation) {
	t.Helper()
	r := relation.NaturalJoinAll(ordersRel(), pizzasRel(), itemsRel())
	f := ftree.New()
	o, p, i := f.NewToken(), f.NewToken(), f.NewToken()
	pizza := &ftree.Node{Attrs: []string{"pizza"}, Deps: ftree.NewTokenSet(o, p)}
	date := &ftree.Node{Attrs: []string{"date"}, Deps: ftree.NewTokenSet(o), Parent: pizza}
	customer := &ftree.Node{Attrs: []string{"customer"}, Deps: ftree.NewTokenSet(o), Parent: date}
	item := &ftree.Node{Attrs: []string{"item"}, Deps: ftree.NewTokenSet(p, i), Parent: pizza}
	price := &ftree.Node{Attrs: []string{"price"}, Deps: ftree.NewTokenSet(i), Parent: item}
	pizza.Children = []*ftree.Node{date, item}
	date.Children = []*ftree.Node{customer}
	item.Children = []*ftree.Node{price}
	f.Roots = []*ftree.Node{pizza}

	fr, err := FromRelation(r, f)
	if err != nil {
		t.Fatal(err)
	}
	return fr, r
}

func mustFlatten(t *testing.T, fr *FRel) *relation.Relation {
	t.Helper()
	if err := fr.Check(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	flat, err := fr.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	return flat
}

func TestSwapPreservesRelation(t *testing.T) {
	fr, r := pizzeriaFRel(t)
	before := fr.Singletons()
	if err := fr.Swap("date"); err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(mustFlatten(t, fr), r) {
		t.Fatal("swap changed the represented relation")
	}
	if fr.Tree.Roots[0].Label() != "date" {
		t.Errorf("date should be root:\n%s", fr.Tree)
	}
	// Swap again: pizza back above date.
	if err := fr.Swap("pizza"); err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(mustFlatten(t, fr), r) {
		t.Fatal("second swap changed the represented relation")
	}
	if fr.Tree.Roots[0].Label() != "pizza" {
		t.Errorf("pizza should be root again:\n%s", fr.Tree)
	}
	_ = before
}

func TestSwapIndependentBranch(t *testing.T) {
	// Orders = Menu(pizza,date) ⋈ Guests(date,customer): customer is
	// independent of pizza given date, so swapping date up carries
	// customer along and shares the customer list across pizzas.
	menu := relation.MustNew("Menu", []string{"pizza", "date"}, []relation.Tuple{
		{sv("Capricciosa"), sv("Friday")},
		{sv("Hawaii"), sv("Friday")},
		{sv("Margherita"), sv("Monday")},
	})
	guests := relation.MustNew("Guests", []string{"date", "customer"}, []relation.Tuple{
		{sv("Friday"), sv("Lucia")},
		{sv("Friday"), sv("Pietro")},
		{sv("Monday"), sv("Mario")},
	})
	r := relation.NaturalJoin(menu, guests)

	f := ftree.New()
	m, g := f.NewToken(), f.NewToken()
	pizza := &ftree.Node{Attrs: []string{"pizza"}, Deps: ftree.NewTokenSet(m)}
	date := &ftree.Node{Attrs: []string{"date"}, Deps: ftree.NewTokenSet(m, g), Parent: pizza}
	customer := &ftree.Node{Attrs: []string{"customer"}, Deps: ftree.NewTokenSet(g), Parent: date}
	pizza.Children = []*ftree.Node{date}
	date.Children = []*ftree.Node{customer}
	f.Roots = []*ftree.Node{pizza}

	fr, err := FromRelation(r, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Swap("date"); err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(mustFlatten(t, fr), r) {
		t.Fatal("swap changed the represented relation")
	}
	d := fr.Tree.Roots[0]
	if d.Label() != "date" || len(d.Children) != 2 {
		t.Fatalf("want date root with two children:\n%s", fr.Tree)
	}
	// Friday's customer list is now shared: singletons should have
	// dropped (before the swap Lucia+Pietro were stored under both
	// pizzas: 3+3+4 = 10; after it: 2 dates + 3 pizzas + 3 customers).
	if got := fr.Singletons(); got != 2+3+3 {
		t.Errorf("singletons after swap = %d, want 8 (2 dates+3 pizzas+3 customers)", got)
	}
}

func TestSelectConst(t *testing.T) {
	fr, r := pizzeriaFRel(t)
	if err := fr.SelectConst("price", GT, iv(1)); err != nil {
		t.Fatal(err)
	}
	want := r.Select(func(tp relation.Tuple) bool {
		return tp[r.ColIndex("price")].Int() > 1
	})
	if !relation.EqualAsSets(mustFlatten(t, fr), want) {
		t.Fatal("select result mismatch")
	}
	// Select on the root attribute.
	fr2, r2 := pizzeriaFRel(t)
	if err := fr2.SelectConst("pizza", EQ, sv("Hawaii")); err != nil {
		t.Fatal(err)
	}
	want2 := r2.Select(func(tp relation.Tuple) bool {
		return tp[r2.ColIndex("pizza")].Str() == "Hawaii"
	})
	if !relation.EqualAsSets(mustFlatten(t, fr2), want2) {
		t.Fatal("root select mismatch")
	}
	// Select everything away.
	if err := fr2.SelectConst("price", GT, iv(100)); err != nil {
		t.Fatal(err)
	}
	if !fr2.IsEmpty() {
		t.Error("selection with empty result should empty the representation")
	}
	if got := mustFlatten(t, fr2); got.Cardinality() != 0 {
		t.Errorf("flatten of empty = %d tuples", got.Cardinality())
	}
	if err := fr2.SelectConst("bogus", EQ, iv(1)); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestMergeRootSiblings(t *testing.T) {
	// Pizzas over path item→pizza, Items over path item2→price; merge
	// item=item2.
	p := pizzasRel()
	i := relation.MustNew("Items", []string{"item2", "price"}, itemsRel().Tuples)

	fp := ftree.New()
	fp.NewRelationPath("item", "pizza")
	frP, err := FromRelationUnchecked(p, fp)
	if err != nil {
		t.Fatal(err)
	}
	fi := ftree.New()
	fi.NewRelationPath("item2", "price")
	frI, err := FromRelationUnchecked(i, fi)
	if err != nil {
		t.Fatal(err)
	}
	fr := Product(frP, frI)
	if err := fr.Merge("item", "item2"); err != nil {
		t.Fatal(err)
	}
	got := mustFlatten(t, fr)
	want := relation.NaturalJoin(pizzasRel(), itemsRel())
	// Align: flattened schema has item and item2 as separate columns with
	// equal values; project away item2 for comparison.
	proj, err := got.Project("pizza", "item", "price")
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(proj, want) {
		t.Fatalf("merge result mismatch:\n%v\nvs\n%v", proj, want)
	}
}

func TestMergeEmptyIntersection(t *testing.T) {
	a := relation.MustNew("A", []string{"x"}, []relation.Tuple{{iv(1)}, {iv(2)}})
	b := relation.MustNew("B", []string{"y"}, []relation.Tuple{{iv(3)}, {iv(4)}})
	fa, fb := ftree.New(), ftree.New()
	fa.NewRelationPath("x")
	fb.NewRelationPath("y")
	frA, _ := FromRelationUnchecked(a, fa)
	frB, _ := FromRelationUnchecked(b, fb)
	fr := Product(frA, frB)
	if err := fr.Merge("x", "y"); err != nil {
		t.Fatal(err)
	}
	if !fr.IsEmpty() {
		t.Error("disjoint merge should be empty")
	}
	if err := fr.Check(); err != nil {
		t.Error(err)
	}
}

func TestAbsorb(t *testing.T) {
	// U(a,b,a2) over linear path a→b→a2; absorb(a,a2) = σ_{a=a2}(U).
	u := relation.MustNew("U", []string{"a", "b", "a2"}, []relation.Tuple{
		{iv(1), iv(10), iv(1)},
		{iv(1), iv(10), iv(2)},
		{iv(1), iv(11), iv(1)},
		{iv(2), iv(10), iv(2)},
		{iv(2), iv(12), iv(1)},
		{iv(3), iv(13), iv(1)},
	})
	f := ftree.New()
	f.NewRelationPath("a", "b", "a2")
	fr, err := FromRelationUnchecked(u, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Absorb("a", "a2"); err != nil {
		t.Fatal(err)
	}
	got := mustFlatten(t, fr)
	want := u.Select(func(tp relation.Tuple) bool {
		return values.Compare(tp[0], tp[2]) == 0
	})
	if !relation.EqualAsSets(got, want) {
		t.Fatalf("absorb mismatch:\n%v\nvs\n%v", got, want)
	}
	// The class is merged.
	if fr.Tree.Roots[0].Label() != "a=a2" {
		t.Errorf("class = %s, want a=a2", fr.Tree.Roots[0].Label())
	}
}

func TestAbsorbDeeper(t *testing.T) {
	// Absorb two levels down with sibling subtrees that must be pruned
	// when the descendant value is missing.
	u := relation.MustNew("U", []string{"a", "b", "c", "a2"}, []relation.Tuple{
		{iv(1), iv(10), iv(7), iv(1)},
		{iv(1), iv(10), iv(8), iv(3)},
		{iv(2), iv(11), iv(7), iv(2)},
		{iv(2), iv(11), iv(9), iv(5)},
		{iv(3), iv(12), iv(7), iv(1)},
	})
	f := ftree.New()
	f.NewRelationPath("a", "b", "c", "a2")
	fr, err := FromRelationUnchecked(u, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := fr.Absorb("a", "a2"); err != nil {
		t.Fatal(err)
	}
	got := mustFlatten(t, fr)
	want := u.Select(func(tp relation.Tuple) bool {
		return values.Compare(tp[0], tp[3]) == 0
	})
	if !relation.EqualAsSets(got, want) {
		t.Fatalf("deep absorb mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestRemoveLeaf(t *testing.T) {
	fr, r := pizzeriaFRel(t)
	if err := fr.RemoveLeaf("price"); err != nil {
		t.Fatal(err)
	}
	if err := fr.RemoveLeaf("item"); err != nil {
		t.Fatal(err)
	}
	got := mustFlatten(t, fr)
	want, err := r.Project("pizza", "date", "customer")
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(got, want) {
		t.Fatal("projection mismatch")
	}
	if err := fr.RemoveLeaf("pizza"); err == nil {
		t.Error("removing a non-leaf should fail")
	}
}

func TestGammaPaperQueryS(t *testing.T) {
	// Query S (introduction): price of each ordered pizza —
	// γ_{sum_price}(item subtree) on T1 gives the factorisation over T2.
	fr, r := pizzeriaFRel(t)
	if err := fr.Gamma("item", []ftree.AggField{{Fn: ftree.Sum, Arg: "price"}}); err != nil {
		t.Fatal(err)
	}
	got := mustFlatten(t, fr)
	// Expected: one row per (pizza,date,customer) with the pizza's total
	// price: Capricciosa 8, Hawaii 9, Margherita 6.
	wantRows := []relation.Tuple{
		{sv("Capricciosa"), sv("Monday"), sv("Mario"), iv(8)},
		{sv("Capricciosa"), sv("Friday"), sv("Mario"), iv(8)},
		{sv("Hawaii"), sv("Friday"), sv("Lucia"), iv(9)},
		{sv("Hawaii"), sv("Friday"), sv("Pietro"), iv(9)},
		{sv("Margherita"), sv("Tuesday"), sv("Mario"), iv(6)},
	}
	want := relation.MustNew("S", []string{"pizza", "date", "customer", "sum_price(item,price)"}, wantRows)
	if !relation.EqualAsSets(got, want) {
		t.Fatalf("query S mismatch:\n%v\nvs\n%v", got, want)
	}
	_ = r
}

func TestGammaPaperQueryP(t *testing.T) {
	// Query P (introduction): revenue per customer, via partial
	// aggregation and restructuring — the full pipeline of Example 1.
	fr, _ := pizzeriaFRel(t)
	// Step 1: γ_sum_price(item,price) — T1 → T2.
	if err := fr.Gamma("item", []ftree.AggField{{Fn: ftree.Sum, Arg: "price"}}); err != nil {
		t.Fatal(err)
	}
	// Step 2: restructure customer to the root — T2 → T3.
	for {
		v := fr.Tree.GroupingViolation([]string{"customer"})
		if v == nil {
			break
		}
		if err := fr.SwapNode(v); err != nil {
			t.Fatal(err)
		}
		if err := fr.Check(); err != nil {
			t.Fatal(err)
		}
	}
	if !fr.Tree.Roots[0].HasAttr("customer") {
		t.Fatalf("customer should be root:\n%s", fr.Tree)
	}
	// Step 3: γ_count(date) — T3 → T4.
	if err := fr.Gamma("date", []ftree.AggField{{Fn: ftree.Count}}); err != nil {
		t.Fatal(err)
	}
	// Step 4: γ_sum_price over the pizza subtree.
	pizzaNode := fr.Tree.AttrNode("pizza")
	if pizzaNode == nil {
		t.Fatalf("pizza node missing:\n%s", fr.Tree)
	}
	if err := fr.GammaNode(pizzaNode, []ftree.AggField{{Fn: ftree.Sum, Arg: "price"}}); err != nil {
		t.Fatal(err)
	}
	// Rename to revenue.
	agg := fr.Tree.Roots[0].Children[0]
	if !agg.IsAgg() {
		t.Fatalf("expected aggregate node under customer:\n%s", fr.Tree)
	}
	if err := fr.Rename(agg.Label(), "revenue"); err != nil {
		t.Fatal(err)
	}
	got := mustFlatten(t, fr)
	want := relation.MustNew("P", []string{"customer", "revenue"}, []relation.Tuple{
		{sv("Lucia"), iv(9)},
		{sv("Mario"), iv(22)},
		{sv("Pietro"), iv(9)},
	})
	if !relation.EqualAsSets(got, want) {
		t.Fatalf("query P mismatch:\n%v\nvs\n%v", got, want)
	}
}

func TestGammaWholeTree(t *testing.T) {
	fr, _ := pizzeriaFRel(t)
	if err := fr.Gamma("pizza", []ftree.AggField{{Fn: ftree.Count}, {Fn: ftree.Sum, Arg: "price"}}); err != nil {
		t.Fatal(err)
	}
	got := mustFlatten(t, fr)
	if got.Cardinality() != 1 {
		t.Fatalf("want single row, got %d", got.Cardinality())
	}
	if got.Tuples[0][0].Int() != 13 || got.Tuples[0][1].Int() != 40 {
		t.Errorf("count,sum = %v, want (13, 40)", got.Tuples[0])
	}
}

func TestGammaOnEmpty(t *testing.T) {
	fr, _ := pizzeriaFRel(t)
	if err := fr.SelectConst("price", GT, iv(1000)); err != nil {
		t.Fatal(err)
	}
	if err := fr.Gamma("item", []ftree.AggField{{Fn: ftree.Sum, Arg: "price"}}); err != nil {
		t.Fatal(err)
	}
	if !fr.IsEmpty() {
		t.Error("γ over the empty relation stays empty")
	}
	if err := fr.Check(); err != nil {
		t.Error(err)
	}
}

func TestGammaInvalidComposition(t *testing.T) {
	fr, _ := pizzeriaFRel(t)
	if err := fr.Gamma("item", []ftree.AggField{{Fn: ftree.Min, Arg: "price"}}); err != nil {
		t.Fatal(err)
	}
	// Counting over a min aggregate is invalid (Proposition 2).
	if err := fr.Gamma("pizza", []ftree.AggField{{Fn: ftree.Count}}); err == nil {
		t.Error("count over min aggregate should fail")
	}
	// CanGamma agrees.
	if err := CanGamma(fr.Tree.Roots[0], []ftree.AggField{{Fn: ftree.Count}}); err == nil {
		t.Error("CanGamma should reject count over min aggregate")
	}
	// min over min is fine.
	if err := CanGamma(fr.Tree.Roots[0], []ftree.AggField{{Fn: ftree.Min, Arg: "price"}}); err != nil {
		t.Errorf("min over min should compose: %v", err)
	}
}

func TestComputeScalarAvg(t *testing.T) {
	fr, _ := pizzeriaFRel(t)
	// avg price per pizza: γ_(sum,count)(item subtree), then divide.
	if err := fr.Gamma("item", []ftree.AggField{
		{Fn: ftree.Sum, Arg: "price"}, {Fn: ftree.Count},
	}); err != nil {
		t.Fatal(err)
	}
	agg := fr.Tree.AggNodes()[0]
	if err := fr.ComputeScalar(agg.Label(), "avg_price", func(v values.Value) values.Value {
		return values.Div(v.VecAt(0), v.VecAt(1))
	}); err != nil {
		t.Fatal(err)
	}
	got := mustFlatten(t, fr)
	// Capricciosa 8/3, Hawaii 9/3=3, Margherita 6/1=6.
	idxP, idxA := got.ColIndex("pizza"), got.ColIndex("avg_price")
	seen := map[string]float64{}
	for _, tp := range got.Tuples {
		seen[tp[idxP].Str()] = tp[idxA].Float()
	}
	if seen["Hawaii"] != 3 || seen["Margherita"] != 6 {
		t.Errorf("avg prices = %v", seen)
	}
	if d := seen["Capricciosa"] - 8.0/3.0; d > 1e-9 || d < -1e-9 {
		t.Errorf("Capricciosa avg = %v, want 8/3", seen["Capricciosa"])
	}
}

func TestRenameAtomic(t *testing.T) {
	fr, _ := pizzeriaFRel(t)
	if err := fr.Rename("customer", "guest"); err != nil {
		t.Fatal(err)
	}
	if fr.Tree.AttrNode("guest") == nil || fr.Tree.AttrNode("customer") != nil {
		t.Error("atomic rename failed")
	}
	if err := fr.Rename("nope", "x"); err == nil {
		t.Error("renaming unknown attribute should fail")
	}
}

// The central differential property: a random pipeline of swaps and
// selections preserves the represented relation exactly.
func TestRandomOpPipelineProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		attrs := []string{"a", "b", "c", "d"}
		n := 1 + rng.Intn(40)
		ts := make([]relation.Tuple, n)
		for i := range ts {
			tp := make(relation.Tuple, len(attrs))
			for j := range tp {
				tp[j] = iv(int64(rng.Intn(4)))
			}
			ts[i] = tp
		}
		rel := relation.MustNew("R", attrs, ts).Dedup()
		f := ftree.New()
		f.NewRelationPath(attrs...)
		fr, err := FromRelation(rel, f)
		if err != nil {
			return false
		}
		ref := rel
		for step := 0; step < 12; step++ {
			switch rng.Intn(3) {
			case 0, 1: // swap a random non-root node
				nodes := fr.Tree.Nodes()
				nd := nodes[rng.Intn(len(nodes))]
				if nd.Parent == nil {
					continue
				}
				if err := fr.SwapNode(nd); err != nil {
					return false
				}
			case 2: // selection with constant
				attr := attrs[rng.Intn(len(attrs))]
				c := iv(int64(rng.Intn(4)))
				op := []CmpOp{EQ, NE, LT, LE, GT, GE}[rng.Intn(6)]
				if err := fr.SelectConst(attr, op, c); err != nil {
					return false
				}
				col := ref.ColIndex(attr)
				ref = ref.Select(func(tp relation.Tuple) bool {
					return op.Holds(tp[col], c)
				})
			}
			if err := fr.Check(); err != nil {
				t.Logf("seed %d: invariant violation: %v", seed, err)
				return false
			}
			flat, err := fr.Flatten()
			if err != nil {
				return false
			}
			if !relation.EqualAsSets(flat, ref) {
				t.Logf("seed %d step %d: semantics diverged", seed, step)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Aggregation differential property: γ over a random subtree matches
// relational grouping.
func TestGammaMatchesRelationalProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		attrs := []string{"a", "b", "c"}
		n := 1 + rng.Intn(30)
		ts := make([]relation.Tuple, n)
		for i := range ts {
			ts[i] = relation.Tuple{iv(int64(rng.Intn(3))), iv(int64(rng.Intn(3))), iv(int64(rng.Intn(5)))}
		}
		rel := relation.MustNew("R", attrs, ts).Dedup()
		f := ftree.New()
		f.NewRelationPath("a", "b", "c")
		fr, err := FromRelation(rel, f)
		if err != nil {
			return false
		}
		// γ over the subtree rooted at b: group by a, aggregate (b,c).
		if err := fr.Gamma("b", []ftree.AggField{
			{Fn: ftree.Count},
			{Fn: ftree.Sum, Arg: "c"},
			{Fn: ftree.Min, Arg: "c"},
			{Fn: ftree.Max, Arg: "b"},
		}); err != nil {
			return false
		}
		flat, err := fr.Flatten()
		if err != nil {
			return false
		}
		// Reference aggregation.
		type acc struct {
			cnt, sum, min, maxb int64
		}
		ref := map[int64]*acc{}
		for _, tp := range rel.Tuples {
			a, bb, c := tp[0].Int(), tp[1].Int(), tp[2].Int()
			g := ref[a]
			if g == nil {
				g = &acc{min: 1 << 62, maxb: -(1 << 62)}
				ref[a] = g
			}
			g.cnt++
			g.sum += c
			if c < g.min {
				g.min = c
			}
			if bb > g.maxb {
				g.maxb = bb
			}
		}
		if flat.Cardinality() != len(ref) {
			return false
		}
		// Multi-field aggregate nodes flatten to one column per field.
		for _, tp := range flat.Tuples {
			g := ref[tp[0].Int()]
			if g == nil {
				return false
			}
			if tp[1].Int() != g.cnt || tp[2].Int() != g.sum ||
				tp[3].Int() != g.min || tp[4].Int() != g.maxb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestProductEmptySide(t *testing.T) {
	a := relation.MustNew("A", []string{"x"}, []relation.Tuple{{iv(1)}})
	b := relation.MustNew("B", []string{"y"}, nil)
	fa, fb := ftree.New(), ftree.New()
	fa.NewRelationPath("x")
	fb.NewRelationPath("y")
	frA, _ := FromRelationUnchecked(a, fa)
	frB, _ := FromRelationUnchecked(b, fb)
	fr := Product(frA, frB)
	if !fr.IsEmpty() {
		t.Error("product with empty side should be empty")
	}
	if err := fr.Check(); err != nil {
		t.Error(err)
	}
}
