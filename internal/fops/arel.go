package fops

// ARel is the arena-backed factorised relation: the same coupled
// (f-tree, representation) pair as FRel, but with all unions living in
// one frep.Store and addressed by node indices. Operators are
// arena-to-arena transforms: they append new nodes that reference
// untouched subtrees in place, so there are no per-node allocations and
// no deep clones — a whole-forest clone is three slab copies and a
// snapshot is O(1).

import (
	"fmt"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// Rel is the operator surface shared by the pointer-based FRel and the
// arena-backed ARel: everything an f-plan (and the engine's enumeration
// paths) needs, independent of the representation.
type Rel interface {
	// Forest returns the f-tree of the factorised relation.
	Forest() *ftree.Forest
	IsEmpty() bool
	MakeEmpty()
	Singletons() int
	Check() error
	Flatten() (*relation.Relation, error)
	SelectConst(attr string, op CmpOp, c values.Value) error
	Merge(attrA, attrB string) error
	Absorb(attrAnc, attrDesc string) error
	RemoveLeaf(attr string) error
	Rename(attr, to string) error
	Swap(attr string) error
	SwapNode(n *ftree.Node) error
	Gamma(attr string, fields []ftree.AggField) error
	GammaNode(n *ftree.Node, fields []ftree.AggField) error
	ComputeScalar(attr, newName string, fn func(values.Value) values.Value) error
	// Enumerator returns a constant-delay enumerator over the
	// representation, nil order for document order.
	Enumerator(order []frep.OrderSpec) (frep.TupleEnum, error)
	// GroupEnumerator returns a grouped enumerator computing the fields
	// per combination of the group attributes.
	GroupEnumerator(g []frep.OrderSpec, fields []ftree.AggField) (frep.GroupEnum, error)
}

var (
	_ Rel = (*FRel)(nil)
	_ Rel = (*ARel)(nil)
)

// ARel couples an f-tree with an arena representation over it: one store
// holding every union, and one root node id per f-tree root.
type ARel struct {
	Tree  *ftree.Forest
	Store *frep.Store
	Roots []frep.NodeID
	// Par is the intra-operator parallelism hint: operators whose
	// occurrence loop runs below a root union of at least
	// MinParallelRebuildValues values fan it across up to Par workers
	// (per-worker overlay arenas, merged back in segment order). 0 or 1
	// executes serially. Par is advisory — results are identical either
	// way.
	Par int
}

// FromRelationStore factorises a relation into the store over the
// f-tree, verifying the decomposition (frep.BuildStore).
func FromRelationStore(s *frep.Store, rel *relation.Relation, f *ftree.Forest) (*ARel, error) {
	roots, err := frep.BuildStore(s, rel, f)
	if err != nil {
		return nil, err
	}
	return &ARel{Tree: f, Store: s, Roots: roots}, nil
}

// FromRelationStoreUnchecked factorises without verifying the
// decomposition; use only for f-trees known to be valid.
func FromRelationStoreUnchecked(s *frep.Store, rel *relation.Relation, f *ftree.Forest) (*ARel, error) {
	roots, err := frep.BuildStoreUnchecked(s, rel, f)
	if err != nil {
		return nil, err
	}
	return &ARel{Tree: f, Store: s, Roots: roots}, nil
}

// FromFRel copies a pointer-based factorised relation into a fresh arena
// store. The input is unchanged; the f-tree is cloned, since operators
// mutate their tree and the two relations must stay independent.
func FromFRel(fr *FRel) *ARel {
	s := frep.NewStore()
	t, _ := fr.Tree.Clone()
	return &ARel{Tree: t, Store: s, Roots: s.FromUnions(fr.Roots)}
}

// ToFRel materialises the pointer-based compatibility view of the arena
// relation (for diffing old against new, and for APIs that still speak
// *frep.Union). The f-tree is cloned so the two views stay independent.
func (ar *ARel) ToFRel() *FRel {
	t, _ := ar.Tree.Clone()
	return &FRel{Tree: t, Roots: ar.Store.ToUnions(ar.Roots)}
}

// Forest implements Rel.
func (ar *ARel) Forest() *ftree.Forest { return ar.Tree }

// Clone deep-copies the factorised relation — three slab copies plus the
// f-tree, regardless of node count. The returned ARel's tree nodes
// correspond to the original's via the second return value.
func (ar *ARel) Clone() (*ARel, map[*ftree.Node]*ftree.Node) {
	t, corr := ar.Tree.Clone()
	return &ARel{Tree: t, Store: ar.Store.Clone(), Roots: append([]frep.NodeID{}, ar.Roots...), Par: ar.Par}, corr
}

// Snapshot returns an O(1) immutable view sharing the store's slabs:
// both sides may keep transforming independently (appends copy out of
// the shared backing on first growth). This is how the server shares one
// materialised base representation across concurrent queries.
func (ar *ARel) Snapshot() *ARel {
	t, _ := ar.Tree.Clone()
	return &ARel{Tree: t, Store: ar.Store.Snapshot(), Roots: append([]frep.NodeID{}, ar.Roots...), Par: ar.Par}
}

// IsEmpty reports whether the represented relation is empty (some root
// union has no values).
func (ar *ARel) IsEmpty() bool {
	for _, r := range ar.Roots {
		if ar.Store.Len(r) == 0 {
			return true
		}
	}
	return false
}

// MakeEmpty canonicalises an empty representation: every root becomes
// the empty union.
func (ar *ARel) MakeEmpty() {
	for i := range ar.Roots {
		ar.Roots[i] = frep.EmptyNode
	}
}

// Check verifies the representation invariants against the f-tree;
// intended for tests and Paranoid mode.
func (ar *ARel) Check() error {
	if err := ar.Tree.Validate(); err != nil {
		return err
	}
	return frep.CheckStoreInvariantsAll(ar.Tree, ar.Store, ar.Roots)
}

// Flatten materialises the represented relation (plain values; aggregate
// nodes contribute their stored values).
func (ar *ARel) Flatten() (*relation.Relation, error) {
	return frep.FlattenStore(ar.Tree, ar.Store, ar.Roots)
}

// Singletons returns the representation size in singletons.
func (ar *ARel) Singletons() int { return ar.Store.SingletonsAll(ar.Roots) }

// Enumerator implements Rel.
func (ar *ARel) Enumerator(order []frep.OrderSpec) (frep.TupleEnum, error) {
	return frep.NewStoreEnumerator(ar.Tree, ar.Store, ar.Roots, order)
}

// GroupEnumerator implements Rel.
func (ar *ARel) GroupEnumerator(g []frep.OrderSpec, fields []ftree.AggField) (frep.GroupEnum, error) {
	return frep.NewStoreGroupEnumerator(ar.Tree, ar.Store, ar.Roots, g, fields)
}

// rebuildFn transforms one occurrence of a target union, returning its
// replacement (which may be EmptyNode to delete the context). Instances
// are bound to one store by their factory; see rebuildAt.
type rebuildFn func(id frep.NodeID) (frep.NodeID, error)

// rebuildAt applies the transform built by mk to every occurrence of
// the node identified by (rootIdx, path), pruning values whose
// transformed subtree became empty. mk is called once per executing
// store — once for a serial rebuild, once per worker overlay for a
// parallel one — so a transform instance may hold builder and evaluator
// scratch bound to its store. When path is non-empty, ar.Par > 1 and
// the root union is large enough, the occurrence loop fans across
// segment workers (parallelRebuild); results are identical either way.
func (ar *ARel) rebuildAt(rootIdx int, path []int, mk func(st *frep.Store) rebuildFn) error {
	root := ar.Roots[rootIdx]
	par := len(path) > 0 && ar.Par > 1 && ar.Store.Len(root) >= MinParallelRebuildValues
	if par {
		if t, ok := ar.Store.RankTotal(root); ok && t < MinParallelRebuildWork {
			par = false
		}
	}
	var nr frep.NodeID
	var err error
	if par {
		nr, err = ar.parallelRebuild(root, path, mk)
	} else {
		nr, err = rebuildIn(ar.Store, root, path, mk(ar.Store))
	}
	if err != nil {
		return err
	}
	ar.Roots[rootIdx] = nr
	if ar.IsEmpty() {
		ar.MakeEmpty()
	}
	return nil
}

// rebuildIn is the serial occurrence recursion of rebuildAt, reading
// and appending through st (the base store, or one worker's overlay).
func rebuildIn(st *frep.Store, id frep.NodeID, path []int, fn rebuildFn) (frep.NodeID, error) {
	if len(path) == 0 {
		return fn(id)
	}
	p := path[0]
	n := st.Len(id)
	arity := st.Arity(id)
	vals := make([]values.Value, 0, n)
	kids := make([]frep.NodeID, 0, n*arity)
	for i := 0; i < n; i++ {
		row := st.KidRow(id, i)
		nk, err := rebuildIn(st, row[p], path[1:], fn)
		if err != nil {
			return frep.EmptyNode, err
		}
		if st.Len(nk) == 0 {
			continue // prune this value
		}
		vals = append(vals, st.Val(id, i))
		off := len(kids)
		kids = append(kids, row...)
		kids[off+p] = nk
	}
	return st.Add(vals, arity, kids), nil
}

// Product combines two arena factorised relations into one representing
// their Cartesian product: the forests are concatenated (with b's
// dependency tokens shifted to stay disjoint from a's) and b's store
// contents are grafted into a's when the two differ. The inputs are
// consumed.
func ProductArena(a, b *ARel) *ARel {
	b.Tree.ShiftTokens(a.Tree.TokenBound())
	a.Tree.Concat(b.Tree)
	if a.Store == b.Store {
		a.Roots = append(a.Roots, b.Roots...)
	} else {
		remap := a.Store.Graft(b.Store)
		for _, r := range b.Roots {
			a.Roots = append(a.Roots, remap(r))
		}
	}
	if a.IsEmpty() {
		a.MakeEmpty()
	}
	return a
}

// pathFromRoot returns the index of n's root tree and the child-index
// path from that root down to n (shared with FRel).
func (ar *ARel) pathFromRoot(n *ftree.Node) (int, []int, error) {
	return pathFromRoot(ar.Tree, n)
}

// pathFromRoot locates node n in the forest: the index of its root and
// the child-index path from that root down to n (empty when n is a
// root).
func pathFromRoot(t *ftree.Forest, n *ftree.Node) (int, []int, error) {
	var rev []int
	top := n
	for top.Parent != nil {
		rev = append(rev, top.Parent.ChildIndex(top))
		top = top.Parent
	}
	ri := t.RootIndex(top)
	if ri < 0 {
		return 0, nil, fmt.Errorf("fops: node %s not in this forest", n.Label())
	}
	path := make([]int, len(rev))
	for i := range rev {
		path[i] = rev[len(rev)-1-i]
	}
	return ri, path, nil
}
