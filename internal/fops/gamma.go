package fops

import (
	"fmt"
	"sort"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

// Gamma applies the aggregation operator γ_F(U) of Section 3: the subtree
// rooted at the node carrying attr is replaced — in the f-tree by a new
// aggregate node F(U), and in the representation by a singleton holding
// the value of F on each occurrence's represented relation, computed by
// the linear-time algorithms of Section 3.2. fields may hold several
// aggregation functions (composite aggregates, Section 3.2.4); their
// values are stored as a vector.
func (fr *FRel) Gamma(attr string, fields []ftree.AggField) error {
	n := fr.Tree.ResolveAttr(attr)
	if n == nil {
		return fmt.Errorf("fops: γ: unknown attribute %q", attr)
	}
	return fr.GammaNode(n, fields)
}

// GammaNode is Gamma addressing the subtree root node directly.
func (fr *FRel) GammaNode(u *ftree.Node, fields []ftree.AggField) error {
	plan, err := ftree.PlanAgg(fr.Tree, u, fields)
	if err != nil {
		return err
	}
	ev, err := frep.NewEvaluator(u, fields)
	if err != nil {
		return err
	}
	ri, path, err := fr.pathFromRoot(u)
	if err != nil {
		return err
	}
	wasEmpty := fr.IsEmpty()
	var evalErr error
	fr.rebuildAt(ri, path, func(sub *frep.Union) *frep.Union {
		if evalErr != nil {
			return &frep.Union{}
		}
		vals, err := ev.Eval(sub)
		if err != nil {
			evalErr = err
			return &frep.Union{}
		}
		var v values.Value
		if len(vals) == 1 {
			v = vals[0]
		} else {
			v = values.NewVec(vals)
		}
		return &frep.Union{Vals: []values.Value{v}}
	})
	if evalErr != nil {
		return evalErr
	}
	fr.Tree.ApplyAgg(plan)
	if wasEmpty {
		fr.MakeEmpty()
	}
	return nil
}

// CanGamma reports whether γ_fields over the subtree rooted at u composes
// with the aggregates already present inside it (Proposition 2): it
// attempts to compile the evaluator.
func CanGamma(u *ftree.Node, fields []ftree.AggField) error {
	_, err := frep.NewEvaluator(u, fields)
	return err
}

// ComputeScalar converts a leaf aggregate node into an atomic node named
// newName whose values are fn applied to the stored aggregates, re-sorted
// and deduplicated. It is used to finalise derived aggregates — for
// example avg, stored as the composite (sum, count) vector, becomes the
// scalar quotient so that the result can be ordered and enumerated by it.
// The converted node loses its aggregate interpretation and must not be
// aggregated over again.
func (fr *FRel) ComputeScalar(attr, newName string, fn func(values.Value) values.Value) error {
	n := fr.Tree.ResolveAttr(attr)
	if n == nil {
		return fmt.Errorf("fops: compute: unknown attribute %q", attr)
	}
	if !n.IsAgg() {
		return fmt.Errorf("fops: compute: %q is not an aggregate node", attr)
	}
	if !n.IsLeaf() {
		return fmt.Errorf("fops: compute: aggregate node %q must be a leaf", attr)
	}
	ri, path, err := fr.pathFromRoot(n)
	if err != nil {
		return err
	}
	fr.rebuildAt(ri, path, func(u *frep.Union) *frep.Union {
		mapped := make([]values.Value, len(u.Vals))
		for i, v := range u.Vals {
			mapped[i] = fn(v)
		}
		sort.Slice(mapped, func(a, b int) bool { return values.Less(mapped[a], mapped[b]) })
		out := &frep.Union{}
		for _, v := range mapped {
			if len(out.Vals) == 0 || values.Compare(out.Vals[len(out.Vals)-1], v) != 0 {
				out.Vals = append(out.Vals, v)
			}
		}
		return out
	})
	n.Agg = nil
	n.Alias = ""
	n.Attrs = []string{newName}
	return nil
}

// Product combines two factorised relations into one representing their
// Cartesian product: the forests are concatenated (with b's dependency
// tokens shifted to stay disjoint from a's) and the root unions appended.
// The inputs are consumed.
func Product(a, b *FRel) *FRel {
	b.Tree.ShiftTokens(a.Tree.TokenBound())
	a.Tree.Concat(b.Tree)
	a.Roots = append(a.Roots, b.Roots...)
	if a.IsEmpty() {
		a.MakeEmpty()
	}
	return a
}
