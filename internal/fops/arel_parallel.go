package fops

// Intra-operator parallelism for the arena f-plan operators. Every
// operator that runs below a root (select, merge, absorb, swap, γ,
// compute, remove) walks the root union's values and rebuilds each
// value's subtree independently — the root union of a factorised forest
// is a disjoint union of subforests (Bakibayev et al.), so the
// occurrence loop partitions into contiguous segments that workers
// process without coordination. Each worker reads the shared base store
// in place and appends into a private overlay arena
// (frep.Store.Overlay); the coordinator adopts the overlays in segment
// order and concatenates the surviving (value, kid-row) pairs under one
// root, so the stitched union has exactly the serial rebuild's values
// in the serial order — only the node layout of the store differs.

import (
	"sync"
	"sync/atomic"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/values"
)

// MinParallelRebuildValues is the smallest root union for which an
// operator's occurrence loop fans out; below it the loop runs serially.
// Exported so tests and benchmarks can force either path.
var MinParallelRebuildValues = 2048

// MinParallelRebuildWork is the smallest represented tuple count (from
// the ranked index, when it covers the root) for which the occurrence
// loop fans out: a wide but shallow root clears the value floor yet
// holds too little work per value to amortise the overlay fan-out. When
// the root is not ranked, only the value floor applies.
var MinParallelRebuildWork = int64(1) << 17

// rebuildWorkers counts operator segment workers spawned, for the
// server's per-query worker accounting.
var rebuildWorkers atomic.Int64

// ParallelRebuildWorkers returns the cumulative number of parallel
// operator workers spawned.
func ParallelRebuildWorkers() int64 { return rebuildWorkers.Load() }

// parallelRebuild fans the top-level occurrence loop of rebuildIn over
// contiguous windows of the root union, one overlay store and one
// transform instance per worker, and stitches the surviving values back
// under one root. The caller guarantees len(path) > 0.
func (ar *ARel) parallelRebuild(root frep.NodeID, path []int, mk func(st *frep.Store) rebuildFn) (frep.NodeID, error) {
	s := ar.Store
	// Count-balanced windows when the store carries a ranked index (so a
	// hot root value does not serialise the rebuild on one worker), with
	// the uniform split as the unranked fallback.
	segs := frep.WeightedSegments(s, root, ar.Par)
	if len(segs) < 2 {
		return rebuildIn(s, root, path, mk(s))
	}
	p := path[0]
	arity := s.Arity(root)
	type partial struct {
		st   *frep.Store
		vals []values.Value
		kids []frep.NodeID
		err  error
	}
	parts := make([]partial, len(segs))
	rebuildWorkers.Add(int64(len(segs)))
	var wg sync.WaitGroup
	for w, sg := range segs {
		w, sg := w, sg
		wg.Add(1)
		go func() {
			defer wg.Done()
			pt := &parts[w]
			st := s.Overlay()
			fn := mk(st)
			pt.st = st
			for i := sg[0]; i < sg[1]; i++ {
				row := s.KidRow(root, i)
				nk, err := rebuildIn(st, row[p], path[1:], fn)
				if err != nil {
					pt.err = err
					return
				}
				if st.Len(nk) == 0 {
					continue // prune this value
				}
				pt.vals = append(pt.vals, s.Val(root, i))
				off := len(pt.kids)
				pt.kids = append(pt.kids, row...)
				pt.kids[off+p] = nk
			}
		}()
	}
	wg.Wait()
	for w := range parts {
		if parts[w].err != nil {
			return frep.EmptyNode, parts[w].err
		}
	}
	var vals []values.Value
	var kids []frep.NodeID
	for w := range parts {
		pt := &parts[w]
		remap := s.AdoptOverlay(pt.st)
		vals = append(vals, pt.vals...)
		for _, k := range pt.kids {
			kids = append(kids, remap(k))
		}
	}
	return s.Add(vals, arity, kids), nil
}
