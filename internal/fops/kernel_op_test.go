package fops

// The SelectConst fast path converts fops.CmpOp to kernel.Op by value
// (kernel.Op(op)), so the two enumerations must stay in the same order.
// This test pins that correspondence semantically: for every operator
// and a grid of value pairs, op.Holds must agree with
// kernel.Op(op).HoldsCmp over values.Compare.

import (
	"math"
	"testing"

	"github.com/factordb/fdb/internal/frep/kernel"
	"github.com/factordb/fdb/internal/values"
)

func TestCmpOpMatchesKernelOp(t *testing.T) {
	pool := []values.Value{
		{}, // NULL
		values.NewBool(false), values.NewBool(true),
		values.NewInt(-3), values.NewInt(0), values.NewInt(7),
		values.NewFloat(-1.5), values.NewFloat(0), values.NewFloat(3.5),
		values.NewFloat(math.Inf(1)), values.NewFloat(math.Copysign(0, -1)),
		values.NewString(""), values.NewString("zz"),
	}
	ops := []CmpOp{EQ, NE, LT, LE, GT, GE}
	for _, op := range ops {
		kop := kernel.Op(op)
		for _, a := range pool {
			for _, b := range pool {
				if got, want := kop.HoldsCmp(values.Compare(a, b)), op.Holds(a, b); got != want {
					t.Fatalf("%v: kernel says %v, fops says %v for (%v, %v)", op, got, want, a, b)
				}
			}
		}
	}
}
