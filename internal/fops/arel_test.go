package fops

// Equivalence tests for the arena operator set: every operator is run on
// both representations of the same data and the results are diffed
// structurally (via the compatibility view) and as relations.

import (
	"testing"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// diffReps asserts the arena relation is structurally identical to the
// legacy one (same trees assumed) and that both satisfy their
// invariants.
func diffReps(t *testing.T, fr *FRel, ar *ARel) {
	t.Helper()
	if err := fr.Check(); err != nil {
		t.Fatalf("legacy invariants: %v", err)
	}
	if err := ar.Check(); err != nil {
		t.Fatalf("arena invariants: %v", err)
	}
	if len(fr.Roots) != len(ar.Roots) {
		t.Fatalf("root count: legacy %d, arena %d", len(fr.Roots), len(ar.Roots))
	}
	for i := range fr.Roots {
		if !frep.EqualStoreUnion(ar.Store, ar.Roots[i], fr.Roots[i]) {
			t.Fatalf("root %d: representations diverged", i)
		}
	}
}

// bothReps builds the pizzeria view in both representations.
func bothReps(t *testing.T) (*FRel, *ARel, *relation.Relation) {
	t.Helper()
	fr, r := pizzeriaFRel(t)
	ar := FromFRel(fr)
	diffReps(t, fr, ar)
	return fr, ar, r
}

func TestARelSelectConstMatchesLegacy(t *testing.T) {
	for _, tc := range []struct {
		attr string
		op   CmpOp
		c    values.Value
	}{
		{"price", LE, iv(2)},
		{"item", EQ, sv("ham")},
		{"customer", NE, sv("Mario")},
		{"pizza", GT, sv("Capricciosa")},
		{"price", GT, iv(99)}, // empties the relation
	} {
		fr, ar, _ := bothReps(t)
		if err := fr.SelectConst(tc.attr, tc.op, tc.c); err != nil {
			t.Fatal(err)
		}
		if err := ar.SelectConst(tc.attr, tc.op, tc.c); err != nil {
			t.Fatal(err)
		}
		diffReps(t, fr, ar)
	}
}

func TestARelSwapMatchesLegacy(t *testing.T) {
	fr, ar, r := bothReps(t)
	for _, attr := range []string{"date", "pizza", "item"} {
		if err := fr.Swap(attr); err != nil {
			t.Fatal(err)
		}
		if err := ar.Swap(attr); err != nil {
			t.Fatal(err)
		}
		diffReps(t, fr, ar)
	}
	flat, err := ar.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if !relation.EqualAsSets(flat, r) {
		t.Fatal("arena swaps changed the represented relation")
	}
}

func TestARelGammaMatchesLegacy(t *testing.T) {
	fr, ar, _ := bothReps(t)
	fields := []ftree.AggField{{Fn: ftree.Sum, Arg: "price"}, {Fn: ftree.Count}}
	if err := fr.Gamma("item", fields); err != nil {
		t.Fatal(err)
	}
	if err := ar.Gamma("item", fields); err != nil {
		t.Fatal(err)
	}
	diffReps(t, fr, ar)
	// Aggregate once more up the tree (composition over the stored
	// vector) and compare again.
	f2 := []ftree.AggField{{Fn: ftree.Count}}
	if err := fr.Gamma("date", f2); err != nil {
		t.Fatal(err)
	}
	if err := ar.Gamma("date", f2); err != nil {
		t.Fatal(err)
	}
	diffReps(t, fr, ar)
}

func TestARelComputeScalarMatchesLegacy(t *testing.T) {
	fr, ar, _ := bothReps(t)
	fields := []ftree.AggField{{Fn: ftree.Sum, Arg: "price"}, {Fn: ftree.Count}}
	if err := fr.Gamma("item", fields); err != nil {
		t.Fatal(err)
	}
	if err := ar.Gamma("item", fields); err != nil {
		t.Fatal(err)
	}
	avg := func(v values.Value) values.Value { return values.Div(v.VecAt(0), v.VecAt(1)) }
	name := fr.Tree.Roots[0].Children[1].Label()
	if err := fr.ComputeScalar(name, "avgprice", avg); err != nil {
		t.Fatal(err)
	}
	name2 := ar.Tree.Roots[0].Children[1].Label()
	if err := ar.ComputeScalar(name2, "avgprice", avg); err != nil {
		t.Fatal(err)
	}
	diffReps(t, fr, ar)
}

func TestARelRemoveLeafMatchesLegacy(t *testing.T) {
	fr, ar, _ := bothReps(t)
	for _, attr := range []string{"price", "customer"} {
		if err := fr.RemoveLeaf(attr); err != nil {
			t.Fatal(err)
		}
		if err := ar.RemoveLeaf(attr); err != nil {
			t.Fatal(err)
		}
		diffReps(t, fr, ar)
	}
}

func TestARelRenameMatchesLegacy(t *testing.T) {
	_, ar, _ := bothReps(t)
	if err := ar.Rename("customer", "buyer"); err != nil {
		t.Fatal(err)
	}
	if ar.Tree.ResolveAttr("buyer") == nil {
		t.Fatal("rename did not take")
	}
}

// TestARelMergeAndProductMatchesLegacy joins the three pizzeria base
// relations bottom-up with Product + Merge in both representations, the
// way the engine's Exec path does.
func TestARelMergeAndProductMatchesLegacy(t *testing.T) {
	mk := func(rel *relation.Relation, attrs ...string) (*FRel, *ARel) {
		f := ftree.New()
		f.NewRelationPath(attrs...)
		fr, err := FromRelationUnchecked(rel, f)
		if err != nil {
			t.Fatal(err)
		}
		f2 := ftree.New()
		f2.NewRelationPath(attrs...)
		ar, err := FromRelationStoreUnchecked(frep.NewStore(), rel, f2)
		if err != nil {
			t.Fatal(err)
		}
		return fr, ar
	}
	// Rename the join copies so attributes stay globally unique.
	pz := relation.MustNew("Pizzas", []string{"pizza2", "item"}, pizzasRel().Tuples)
	it := relation.MustNew("Items", []string{"item2", "price"}, itemsRel().Tuples)

	of, oa := mk(ordersRel(), "pizza", "date", "customer")
	pf, pa := mk(pz, "item", "pizza2")
	itf, ita := mk(it, "item2", "price")

	fr := Product(Product(of, pf), itf)
	ar := ProductArena(ProductArena(oa, pa), ita)
	diffReps(t, fr, ar)

	// The same cascade the workload's FactorisedR1 uses: merge at the
	// roots, swap the join attribute up, merge again.
	steps := []func(r Rel) error{
		func(r Rel) error { return r.Merge("item", "item2") },
		func(r Rel) error { return r.Swap("pizza2") },
		func(r Rel) error { return r.Merge("pizza2", "pizza") },
	}
	for i, step := range steps {
		if err := step(fr); err != nil {
			t.Fatalf("step %d (legacy): %v", i, err)
		}
		if err := step(ar); err != nil {
			t.Fatalf("step %d (arena): %v", i, err)
		}
		diffReps(t, fr, ar)
	}
}

// TestARelAbsorbMatchesLegacy exercises absorb at depth > 1: the
// descendant is two levels below the ancestor.
func TestARelAbsorbMatchesLegacy(t *testing.T) {
	rel := relation.MustNew("R", []string{"a", "b", "c"}, []relation.Tuple{
		{iv(1), iv(1), iv(1)},
		{iv(1), iv(2), iv(1)},
		{iv(2), iv(2), iv(2)},
		{iv(3), iv(1), iv(3)},
		{iv(3), iv(3), iv(1)},
	})
	mkPair := func() (*FRel, *ARel) {
		f := ftree.New()
		f.NewRelationPath("a", "b", "c")
		fr, err := FromRelationUnchecked(rel, f)
		if err != nil {
			t.Fatal(err)
		}
		f2 := ftree.New()
		f2.NewRelationPath("a", "b", "c")
		ar, err := FromRelationStoreUnchecked(frep.NewStore(), rel, f2)
		if err != nil {
			t.Fatal(err)
		}
		return fr, ar
	}
	fr, ar := mkPair()
	if err := fr.Absorb("a", "c"); err != nil {
		t.Fatal(err)
	}
	if err := ar.Absorb("a", "c"); err != nil {
		t.Fatal(err)
	}
	diffReps(t, fr, ar)
	// Direct-child absorb too.
	fr, ar = mkPair()
	if err := fr.Absorb("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := ar.Absorb("a", "b"); err != nil {
		t.Fatal(err)
	}
	diffReps(t, fr, ar)
}

func TestARelCloneAndSnapshotIsolation(t *testing.T) {
	_, ar, _ := bothReps(t)
	before := ar.Singletons()
	cl, _ := ar.Clone()
	snap := ar.Snapshot()
	if err := cl.SelectConst("price", LE, iv(1)); err != nil {
		t.Fatal(err)
	}
	if err := snap.SelectConst("item", EQ, sv("ham")); err != nil {
		t.Fatal(err)
	}
	if got := ar.Singletons(); got != before {
		t.Fatalf("original changed: %d -> %d singletons", before, got)
	}
	if cl.Singletons() >= before || snap.Singletons() >= before {
		t.Fatal("selections on copies had no effect")
	}
}

func TestARelRoundTripThroughFRel(t *testing.T) {
	fr, ar, _ := bothReps(t)
	back := ar.ToFRel()
	for i := range fr.Roots {
		if !frep.Equal(back.Roots[i], fr.Roots[i]) {
			t.Fatalf("root %d: ToFRel differs from original", i)
		}
	}
}
