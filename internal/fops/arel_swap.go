package fops

// Arena port of the χ restructuring operator; same regrouping algorithm
// as swap.go, with kid rows assembled directly into the store slabs.

import (
	"fmt"
	"slices"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

// Swap applies the restructuring operator χ_{A,B} (Section 4.2); see
// FRel.Swap for the regrouping semantics.
func (ar *ARel) Swap(attr string) error {
	b := ar.Tree.ResolveAttr(attr)
	if b == nil {
		return fmt.Errorf("fops: swap: unknown attribute %q", attr)
	}
	return ar.SwapNode(b)
}

// SwapNode is Swap addressing the f-tree node directly.
func (ar *ARel) SwapNode(b *ftree.Node) error {
	plan, err := ftree.PlanSwap(b)
	if err != nil {
		return err
	}
	a := plan.A
	ri, path, err := ar.pathFromRoot(a)
	if err != nil {
		return err
	}
	// Positions of A's children other than B, in order (they follow A in
	// the output rows, preceding the dependent children of B — matching
	// ftree.ApplySwap's child order: A.Children = aOther ++ dep).
	var aOther []int
	for i := range a.Children {
		if i != plan.BIdx {
			aOther = append(aOther, i)
		}
	}
	err = ar.rebuildAt(ri, path, func(st *frep.Store) rebuildFn {
		return func(ua frep.NodeID) (frep.NodeID, error) {
			return swapUnionIn(st, ua, plan, aOther), nil
		}
	})
	if err != nil {
		return err
	}
	ar.Tree.ApplySwap(plan)
	if ar.IsEmpty() {
		ar.MakeEmpty()
	}
	return nil
}

func swapUnionIn(s *frep.Store, ua frep.NodeID, plan *ftree.SwapPlan, aOther []int) frep.NodeID {
	aVals := s.Vals(ua)
	// Gather all (a, b) pairs as packed indices (aIdx<<32 | bIdx): the
	// sort then moves 8-byte words and each comparison looks the b-value
	// up through a small per-a table.
	bIDs := make([]frep.NodeID, len(aVals))
	bVals := make([][]values.Value, len(aVals))
	total := 0
	for i := range aVals {
		bIDs[i] = s.Kid(ua, i, plan.BIdx)
		bVals[i] = s.Vals(bIDs[i])
		total += len(bVals[i])
	}
	allInt := true
	for i := range aVals {
		for _, v := range bVals[i] {
			if v.Kind() != values.Int {
				allInt = false
				break
			}
		}
		if !allInt {
			break
		}
	}
	entries := make([]int64, 0, total)
	for i := range aVals {
		for j := range bVals[i] {
			entries = append(entries, int64(i)<<32|int64(j))
		}
	}
	valOf := func(e int64) values.Value {
		return bVals[e>>32][int32(e)]
	}
	// Group by b, breaking ties by the a-position so each group keeps
	// the ascending a-order (the packed aIdx sits in the high bits).
	if allInt {
		// Fast path: sort (int key, packed position) pairs without
		// touching Value structs in the comparator.
		type keyed struct{ k, e int64 }
		ks := make([]keyed, len(entries))
		for i, e := range entries {
			ks[i] = keyed{k: valOf(e).Int(), e: e}
		}
		slices.SortFunc(ks, func(x, y keyed) int {
			switch {
			case x.k < y.k:
				return -1
			case x.k > y.k:
				return 1
			case x.e < y.e:
				return -1
			case x.e > y.e:
				return 1
			default:
				return 0
			}
		})
		for i, kv := range ks {
			entries[i] = kv.e
		}
	} else {
		slices.SortFunc(entries, func(x, y int64) int {
			if c := values.Compare(valOf(x), valOf(y)); c != 0 {
				return c
			}
			return int(x>>32) - int(y>>32)
		})
	}

	aRowLen := len(aOther) + len(plan.DepIdx)
	outArity := 1 + len(plan.IndepIdx)
	var outB, naB frep.UnionBuilder
	outB.Reset(s, outArity)
	outRow := make([]frep.NodeID, 0, outArity)
	naRow := make([]frep.NodeID, 0, aRowLen)
	for start := 0; start < len(entries); {
		end := start + 1
		firstVal := valOf(entries[start])
		for end < len(entries) && values.Compare(valOf(entries[end]), firstVal) == 0 {
			end++
		}
		run := entries[start:end]
		firstA, firstB := int32(run[0]>>32), int32(run[0])
		firstRow := s.KidRow(bIDs[firstA], int(firstB))
		if Paranoid {
			for _, e := range run[1:] {
				bRow := s.KidRow(bIDs[int32(e>>32)], int(int32(e)))
				for _, k := range plan.IndepIdx {
					if !frep.EqualStore(s, firstRow[k], s, bRow[k]) {
						panic(fmt.Sprintf("fops: swap: subtree classified independent differs across contexts for value %v", firstVal))
					}
				}
			}
		}
		// The new A-union below this b: for each occurrence, the E_a
		// parts followed by the G_ab parts.
		naB.Reset(s, aRowLen)
		for _, e := range run {
			aIdx, bIdx := int32(e>>32), int32(e)
			if aRowLen > 0 {
				row := s.KidRow(ua, int(aIdx))
				bRow := s.KidRow(bIDs[aIdx], int(bIdx))
				naRow = naRow[:0]
				for _, k := range aOther {
					naRow = append(naRow, row[k])
				}
				for _, k := range plan.DepIdx {
					naRow = append(naRow, bRow[k])
				}
				naB.Append(aVals[aIdx], naRow)
			} else {
				naB.Append(aVals[aIdx], nil)
			}
		}
		na := naB.Finish()
		// Independent children move up with B, taken from the first
		// occurrence (they are equal across occurrences by the
		// dependency analysis).
		outRow = outRow[:0]
		outRow = append(outRow, na)
		for _, k := range plan.IndepIdx {
			outRow = append(outRow, firstRow[k])
		}
		outB.Append(firstVal, outRow)
		start = end
	}
	return outB.Finish()
}
