package fops

// Parallel-operator suite: every rebuildAt-based operator must produce
// the same representation at Par=8 (overlay workers, adopt-in-order
// stitch) as at Par=1, compared by flattening. Run under -race in CI.

import (
	"math/rand"
	"testing"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// buildARel factorises a random three-attribute relation (a, b, c) as a
// linear path; a and c share a domain so absorb has matches.
func buildARel(t *testing.T, n, par int) *ARel {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tuples := make([]relation.Tuple, n)
	for i := range tuples {
		tuples[i] = relation.Tuple{
			values.NewInt(int64(rng.Intn(40))),
			values.NewInt(int64(rng.Intn(15))),
			values.NewInt(int64(rng.Intn(40))),
		}
	}
	rel, err := relation.New("R", []string{"a", "b", "c"}, tuples)
	if err != nil {
		t.Fatal(err)
	}
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	ar, err := FromRelationStore(frep.NewStore(), rel, f)
	if err != nil {
		t.Fatal(err)
	}
	ar.Par = par
	return ar
}

// diffFlat compares two arena relations by their flattened output.
func diffFlat(t *testing.T, step string, serial, parallel *ARel) {
	t.Helper()
	if err := parallel.Check(); err != nil {
		t.Fatalf("%s: parallel representation invalid: %v", step, err)
	}
	a, err := serial.Flatten()
	if err != nil {
		t.Fatalf("%s: %v", step, err)
	}
	b, err := parallel.Flatten()
	if err != nil {
		t.Fatalf("%s: %v", step, err)
	}
	if len(a.Tuples) != len(b.Tuples) {
		t.Fatalf("%s: serial %d tuples, parallel %d", step, len(a.Tuples), len(b.Tuples))
	}
	for i := range a.Tuples {
		if relation.Compare(a.Tuples[i], b.Tuples[i]) != 0 {
			t.Fatalf("%s: tuple %d: serial %v, parallel %v", step, i, a.Tuples[i], b.Tuples[i])
		}
	}
}

// TestParallelOpsMatchSerial drives the same operator sequence through
// a serial and a Par=8 relation, comparing after every step: select,
// mid-tree swap, absorb, remove, γ below the root and γ at the root.
func TestParallelOpsMatchSerial(t *testing.T) {
	old := MinParallelRebuildValues
	MinParallelRebuildValues = 1
	defer func() { MinParallelRebuildValues = old }()

	serial := buildARel(t, 4000, 1)
	parallel := buildARel(t, 4000, 8)

	step := func(name string, apply func(ar *ARel) error) {
		t.Helper()
		if err := apply(serial); err != nil {
			t.Fatalf("%s (serial): %v", name, err)
		}
		if err := apply(parallel); err != nil {
			t.Fatalf("%s (parallel): %v", name, err)
		}
		diffFlat(t, name, serial, parallel)
	}

	step("select", func(ar *ARel) error {
		return ar.SelectConst("b", GE, values.NewInt(3))
	})
	step("swap-mid", func(ar *ARel) error { return ar.Swap("b") })
	// Tree is now b→a→c? No: swap(b) exchanges b with its parent a,
	// giving b above a; c stays below a. Absorb a=c restricts each c
	// to its ancestor a's value.
	step("absorb", func(ar *ARel) error { return ar.Absorb("a", "c") })
	step("gamma-below-root", func(ar *ARel) error {
		return ar.Gamma("a", []ftree.AggField{
			{Fn: ftree.Count},
			{Fn: ftree.Sum, Arg: "a"},
		})
	})
	step("gamma-at-root", func(ar *ARel) error {
		return ar.Gamma("b", []ftree.AggField{{Fn: ftree.Count}})
	})
}

// TestParallelMergeMatchesSerial exercises the merge operator below a
// shared parent (the join path).
func TestParallelMergeMatchesSerial(t *testing.T) {
	old := MinParallelRebuildValues
	MinParallelRebuildValues = 1
	defer func() { MinParallelRebuildValues = old }()

	build := func(par int) *ARel {
		rng := rand.New(rand.NewSource(11))
		n := 3000
		t1 := make([]relation.Tuple, n)
		t2 := make([]relation.Tuple, n)
		for i := range t1 {
			t1[i] = relation.Tuple{
				values.NewInt(int64(rng.Intn(30))),
				values.NewInt(int64(rng.Intn(25))),
			}
			t2[i] = relation.Tuple{
				values.NewInt(int64(rng.Intn(30))),
				values.NewInt(int64(rng.Intn(25))),
			}
		}
		r1, err := relation.New("R1", []string{"k", "x"}, t1)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := relation.New("R2", []string{"k2", "y"}, t2)
		if err != nil {
			t.Fatal(err)
		}
		s := frep.NewStore()
		fa := ftree.New()
		fa.NewRelationPath("k", "x")
		a, err := FromRelationStore(s, r1, fa)
		if err != nil {
			t.Fatal(err)
		}
		fb := ftree.New()
		fb.NewRelationPath("k2", "y")
		b, err := FromRelationStore(s, r2, fb)
		if err != nil {
			t.Fatal(err)
		}
		ar := ProductArena(a, b)
		ar.Par = par
		return ar
	}
	serial, parallel := build(1), build(8)
	// The root-level merge k=k2 makes x and y siblings under the merged
	// root; merging them then exercises the parallel sibling-merge path.
	apply := func(ar *ARel) error {
		if err := ar.Merge("k", "k2"); err != nil {
			return err
		}
		return ar.Merge("x", "y")
	}
	if err := apply(serial); err != nil {
		t.Fatalf("serial: %v", err)
	}
	if err := apply(parallel); err != nil {
		t.Fatalf("parallel: %v", err)
	}
	diffFlat(t, "merge", serial, parallel)
}
