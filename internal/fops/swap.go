package fops

import (
	"fmt"
	"slices"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

// Swap applies the restructuring operator χ_{A,B} (Section 4.2): node B
// (carrying attr) is exchanged with its parent A. On the data side every
// occurrence
//
//	⋃_a ⟨A:a⟩ × E_a × ⋃_b (⟨B:b⟩ × F_b × G_ab)
//
// is regrouped into
//
//	⋃_b ⟨B:b⟩ × F_b × ⋃_a (⟨A:a⟩ × E_a × G_ab)
//
// where F_b are the children of B independent of A (they move up with B)
// and G_ab the dependent ones (they stay below A). The cost is linear in
// the size of the restructured fragment.
func (fr *FRel) Swap(attr string) error {
	b := fr.Tree.ResolveAttr(attr)
	if b == nil {
		return fmt.Errorf("fops: swap: unknown attribute %q", attr)
	}
	return fr.SwapNode(b)
}

// SwapNode is Swap addressing the f-tree node directly.
func (fr *FRel) SwapNode(b *ftree.Node) error {
	plan, err := ftree.PlanSwap(b)
	if err != nil {
		return err
	}
	a := plan.A
	ri, path, err := fr.pathFromRoot(a)
	if err != nil {
		return err
	}
	// Positions of A's children other than B, in order (they follow A in
	// the output rows, preceding the dependent children of B — matching
	// ftree.ApplySwap's child order: A.Children = aOther ++ dep).
	var aOther []int
	for i := range a.Children {
		if i != plan.BIdx {
			aOther = append(aOther, i)
		}
	}
	fr.rebuildAt(ri, path, func(ua *frep.Union) *frep.Union {
		return swapUnion(ua, plan, aOther)
	})
	fr.Tree.ApplySwap(plan)
	if fr.IsEmpty() {
		fr.MakeEmpty()
	}
	return nil
}

func swapUnion(ua *frep.Union, plan *ftree.SwapPlan, aOther []int) *frep.Union {
	// Gather all (a, b) pairs as packed indices (aIdx<<32 | bIdx): the
	// sort then moves 8-byte words and each comparison looks the b-value
	// up through a small per-a table.
	bUnions := make([]*frep.Union, len(ua.Vals))
	total := 0
	for i := range ua.Vals {
		bUnions[i] = ua.Kids[i][plan.BIdx]
		total += bUnions[i].Len()
	}
	allInt := true
	for i := range ua.Vals {
		for _, v := range bUnions[i].Vals {
			if v.Kind() != values.Int {
				allInt = false
				break
			}
		}
		if !allInt {
			break
		}
	}
	entries := make([]int64, 0, total)
	for i := range ua.Vals {
		for j := range bUnions[i].Vals {
			entries = append(entries, int64(i)<<32|int64(j))
		}
	}
	valOf := func(e int64) values.Value {
		return bUnions[e>>32].Vals[int32(e)]
	}
	// Group by b, breaking ties by the a-position so each group keeps
	// the ascending a-order (the packed aIdx sits in the high bits).
	if allInt {
		// Fast path: sort (int key, packed position) pairs without
		// touching Value structs in the comparator.
		type keyed struct{ k, e int64 }
		ks := make([]keyed, len(entries))
		for i, e := range entries {
			ks[i] = keyed{k: valOf(e).Int(), e: e}
		}
		slices.SortFunc(ks, func(x, y keyed) int {
			switch {
			case x.k < y.k:
				return -1
			case x.k > y.k:
				return 1
			case x.e < y.e:
				return -1
			case x.e > y.e:
				return 1
			default:
				return 0
			}
		})
		for i, kv := range ks {
			entries[i] = kv.e
		}
	} else {
		slices.SortFunc(entries, func(x, y int64) int {
			if c := values.Compare(valOf(x), valOf(y)); c != 0 {
				return c
			}
			return int(x>>32) - int(y>>32)
		})
	}

	out := &frep.Union{}
	aRowLen := len(aOther) + len(plan.DepIdx)
	for start := 0; start < len(entries); {
		end := start + 1
		firstVal := valOf(entries[start])
		for end < len(entries) && values.Compare(valOf(entries[end]), firstVal) == 0 {
			end++
		}
		run := entries[start:end]
		first := swapEntry{aIdx: int32(run[0] >> 32), bIdx: int32(run[0])}
		firstRow := bUnions[first.aIdx].KidsAt(int(first.bIdx))
		// Independent children move up with B, taken from the first
		// occurrence (they are equal across occurrences by the
		// dependency analysis).
		indep := make([]*frep.Union, 0, len(plan.IndepIdx))
		for _, k := range plan.IndepIdx {
			indep = append(indep, firstRow[k])
		}
		if Paranoid {
			for _, e := range run[1:] {
				bRow := bUnions[int32(e>>32)].KidsAt(int(int32(e)))
				for gi, k := range plan.IndepIdx {
					if !frep.Equal(indep[gi], bRow[k]) {
						panic(fmt.Sprintf("fops: swap: subtree classified independent differs across contexts for value %v", firstVal))
					}
				}
			}
		}
		// The new A-union below this b: for each occurrence, the E_a
		// parts followed by the G_ab parts. All rows of the run share one
		// backing array to keep allocation counts low.
		na := &frep.Union{Vals: make([]values.Value, 0, len(run))}
		if aRowLen > 0 {
			na.Kids = make([][]*frep.Union, 0, len(run))
		}
		var block []*frep.Union
		if aRowLen > 0 {
			block = make([]*frep.Union, 0, aRowLen*len(run))
		}
		for _, e := range run {
			aIdx, bIdx := int32(e>>32), int32(e)
			na.Vals = append(na.Vals, ua.Vals[aIdx])
			if aRowLen > 0 {
				row := ua.Kids[aIdx]
				bRow := bUnions[aIdx].KidsAt(int(bIdx))
				off := len(block)
				for _, k := range aOther {
					block = append(block, row[k])
				}
				for _, k := range plan.DepIdx {
					block = append(block, bRow[k])
				}
				na.Kids = append(na.Kids, block[off:len(block):len(block)])
			}
		}
		newRow := make([]*frep.Union, 0, 1+len(indep))
		newRow = append(newRow, na)
		newRow = append(newRow, indep...)
		out.Vals = append(out.Vals, firstVal)
		out.Kids = append(out.Kids, newRow)
		start = end
	}
	return out
}

// swapEntry unpacks one gathered (a, b) position pair.
type swapEntry struct {
	aIdx int32
	bIdx int32
}
