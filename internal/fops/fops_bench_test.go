package fops

import (
	"math/rand"
	"strconv"
	"testing"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

func benchFRel(b *testing.B, n int) *FRel {
	b.Helper()
	wasParanoid := Paranoid
	Paranoid = false
	b.Cleanup(func() { Paranoid = wasParanoid })
	rng := rand.New(rand.NewSource(11))
	ts := make([]relation.Tuple, n)
	for i := range ts {
		ts[i] = relation.Tuple{
			values.NewInt(int64(rng.Intn(n/16 + 1))),
			values.NewInt(int64(rng.Intn(64))),
			values.NewInt(int64(rng.Intn(1024))),
		}
	}
	rel := relation.MustNew("R", []string{"a", "b", "c"}, ts).Dedup()
	f := ftree.New()
	f.NewRelationPath("a", "b", "c")
	fr, err := FromRelationUnchecked(rel, f)
	if err != nil {
		b.Fatal(err)
	}
	return fr
}

// BenchmarkSwap measures the χ restructuring operator (the cost of
// re-sorting/regrouping factorised data) per singleton.
func BenchmarkSwap(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			base := benchFRel(b, n)
			sing := base.Singletons()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fr, _ := base.Clone()
				b.StartTimer()
				if err := fr.Swap("b"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(sing), "ns/singleton")
		})
	}
}

func BenchmarkGamma(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			base := benchFRel(b, n)
			fields := []ftree.AggField{{Fn: ftree.Sum, Arg: "c"}, {Fn: ftree.Count}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				fr, _ := base.Clone()
				b.StartTimer()
				if err := fr.Gamma("b", fields); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSelectConst(b *testing.B) {
	base := benchFRel(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fr, _ := base.Clone()
		b.StartTimer()
		if err := fr.SelectConst("c", LT, values.NewInt(512)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	mk := func(name, a1, a2 string, n int) *relation.Relation {
		ts := make([]relation.Tuple, n)
		for i := range ts {
			ts[i] = relation.Tuple{
				values.NewInt(int64(rng.Intn(n / 4))),
				values.NewInt(int64(rng.Intn(64))),
			}
		}
		return relation.MustNew(name, []string{a1, a2}, ts).Dedup()
	}
	r := mk("R", "x", "y", 20000)
	s := mk("S", "x2", "z", 20000)
	wasParanoid := Paranoid
	Paranoid = false
	b.Cleanup(func() { Paranoid = wasParanoid })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fr1 := mustRel(b, r)
		fr2 := mustRel(b, s)
		fr := Product(fr1, fr2)
		b.StartTimer()
		if err := fr.Merge("x", "x2"); err != nil {
			b.Fatal(err)
		}
	}
}

func mustRel(b *testing.B, rel *relation.Relation) *FRel {
	b.Helper()
	f := ftree.New()
	f.NewRelationPath(rel.Attrs...)
	fr, err := FromRelationUnchecked(rel, f)
	if err != nil {
		b.Fatal(err)
	}
	return fr
}

// --- Arena counterparts -----------------------------------------------
//
// The legacy benchmarks above deep-clone the base representation per
// iteration (StopTimer'd) and then measure the operator. The arena pairs
// below do the same with slab clones into a reused store, so the numbers
// isolate the operator itself on each representation.

func benchARel(b *testing.B, n int) *ARel {
	b.Helper()
	fr := benchFRel(b, n)
	return FromFRel(fr)
}

// cloneArena slab-copies base into the reused scratch store and returns
// a fresh working relation.
func cloneArena(base *ARel, scratch *frep.Store) *ARel {
	scratch.Reset()
	base.Store.CloneInto(scratch)
	t, _ := base.Tree.Clone()
	return &ARel{Tree: t, Store: scratch, Roots: append([]frep.NodeID{}, base.Roots...)}
}

func BenchmarkArenaSwap(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			base := benchARel(b, n)
			scratch := frep.NewStore()
			sing := base.Singletons()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ar := cloneArena(base, scratch)
				b.StartTimer()
				if err := ar.Swap("b"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(sing), "ns/singleton")
		})
	}
}

func BenchmarkArenaGamma(b *testing.B) {
	for _, n := range []int{10000, 100000} {
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			base := benchARel(b, n)
			scratch := frep.NewStore()
			fields := []ftree.AggField{{Fn: ftree.Sum, Arg: "c"}, {Fn: ftree.Count}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				ar := cloneArena(base, scratch)
				b.StartTimer()
				if err := ar.Gamma("b", fields); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkArenaSelectConst(b *testing.B) {
	base := benchARel(b, 100000)
	scratch := frep.NewStore()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ar := cloneArena(base, scratch)
		b.StartTimer()
		if err := ar.SelectConst("c", LT, values.NewInt(512)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArenaClone contrasts the per-query snapshot cost of the two
// representations directly (what RunOnView/RunOnARel pay before any
// operator runs).
func BenchmarkArenaClone(b *testing.B) {
	base := benchARel(b, 100000)
	legacy := benchFRel(b, 100000)
	scratch := frep.NewStore()
	b.Run("legacy-deep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fr, _ := legacy.Clone(); fr == nil {
				b.Fatal("nil clone")
			}
		}
	})
	b.Run("arena-slab", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ar := cloneArena(base, scratch); ar == nil {
				b.Fatal("nil clone")
			}
		}
	})
	b.Run("arena-snapshot", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ar := base.Snapshot(); ar == nil {
				b.Fatal("nil snapshot")
			}
		}
	})
}
