package fops

// Arena ports of the f-plan operators. Each is the same algorithm as its
// pointer-based counterpart in select.go / gamma.go, but reads and
// writes store slabs: new nodes are appended, untouched subtrees are
// referenced by id, and no per-node heap objects are created. Operators
// express their per-occurrence transform as a rebuildFn factory so the
// occurrence loop can fan across segment workers (arel_parallel.go):
// the factory runs once per executing store and binds that instance's
// builder and evaluator scratch to it.

import (
	"fmt"
	"sort"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/frep/kernel"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

// SelectConst applies the selection σ_{attr op c} in one traversal of
// the representation, filtering the attribute's unions and pruning
// emptied contexts.
func (ar *ARel) SelectConst(attr string, op CmpOp, c values.Value) error {
	n := ar.Tree.ResolveAttr(attr)
	if n == nil {
		return fmt.Errorf("fops: select: unknown attribute %q", attr)
	}
	ri, path, err := ar.pathFromRoot(n)
	if err != nil {
		return err
	}
	return ar.rebuildAt(ri, path, func(st *frep.Store) rebuildFn {
		var b frep.UnionBuilder
		var bits []uint64
		kop := kernel.Op(op) // CmpOp and kernel.Op share their numbering
		return func(id frep.NodeID) (frep.NodeID, error) {
			// Vectorised path: compare the whole value run through a
			// kernel and compact by bitmap runs; falls through to the
			// scalar loop for mixed-kind or non-numeric runs.
			if out, ok := st.SelectConstKernel(id, kop, c, &bits); ok {
				return out, nil
			}
			arity := st.Arity(id)
			b.Reset(st, arity)
			for i, v := range st.Vals(id) {
				if !op.Holds(v, c) {
					continue
				}
				if arity > 0 {
					b.Append(v, st.KidRow(id, i))
				} else {
					b.Append(v, nil)
				}
			}
			return b.Finish(), nil
		}
	})
}

// Merge implements the equality selection attrA = attrB when the two
// attributes' nodes are siblings; see FRel.Merge.
func (ar *ARel) Merge(attrA, attrB string) error {
	x := ar.Tree.ResolveAttr(attrA)
	y := ar.Tree.ResolveAttr(attrB)
	if x == nil || y == nil {
		return fmt.Errorf("fops: merge: unknown attribute %q or %q", attrA, attrB)
	}
	if x == y {
		return nil // already equal
	}
	plan, err := ftree.PlanMerge(ar.Tree, x, y)
	if err != nil {
		return err
	}
	if plan.Parent == nil {
		s := ar.Store
		var ib frep.UnionBuilder
		var pairs [][2]int32
		merged := intersectUnionsIn(s, &ib, &pairs, ar.Roots[plan.XIdx], ar.Roots[plan.YIdx])
		if s.Len(merged) == 0 {
			ar.Tree.ApplyMerge(plan)
			ar.Roots = ar.Roots[:len(ar.Roots)-1]
			ar.MakeEmpty()
			return nil
		}
		out := make([]frep.NodeID, 0, len(ar.Roots)-1)
		for k, u := range ar.Roots {
			switch k {
			case plan.XIdx:
				out = append(out, merged)
			case plan.YIdx:
				// dropped
			default:
				out = append(out, u)
			}
		}
		ar.Roots = out
	} else {
		ri, path, err := ar.pathFromRoot(plan.Parent)
		if err != nil {
			return err
		}
		err = ar.rebuildAt(ri, path, func(st *frep.Store) rebuildFn {
			var ib, b frep.UnionBuilder
			var scratch []frep.NodeID
			var pairs [][2]int32
			return func(id frep.NodeID) (frep.NodeID, error) {
				arity := st.Arity(id) - 1
				b.Reset(st, arity)
				for i, v := range st.Vals(id) {
					row := st.KidRow(id, i)
					merged := intersectUnionsIn(st, &ib, &pairs, row[plan.XIdx], row[plan.YIdx])
					if st.Len(merged) == 0 {
						continue
					}
					scratch = scratch[:0]
					for k, u := range row {
						switch k {
						case plan.XIdx:
							scratch = append(scratch, merged)
						case plan.YIdx:
							// dropped
						default:
							scratch = append(scratch, u)
						}
					}
					b.Append(v, scratch)
				}
				return b.Finish(), nil
			}
		})
		if err != nil {
			return err
		}
	}
	ar.Tree.ApplyMerge(plan)
	if ar.IsEmpty() {
		ar.MakeEmpty()
	}
	return nil
}

// intersectUnionsIn intersects two sorted unions of st; for each common
// value the children of both sides are concatenated (x's children
// first), matching the merged node's child order. b and pairs are the
// caller's reused scratch.
func intersectUnionsIn(st *frep.Store, b *frep.UnionBuilder, pairs *[][2]int32, x, y frep.NodeID) frep.NodeID {
	arity := st.Arity(x) + st.Arity(y)
	b.Reset(st, arity)
	xv, yv := st.Vals(x), st.Vals(y)
	var row []frep.NodeID
	// Vectorised path: when both runs are kind-homogeneous the kernel
	// two-pointer merge finds the matching index pairs without per-value
	// Compare dispatch; the kid rows are then spliced per pair.
	if ps, ok := st.IntersectPairs(x, y, (*pairs)[:0]); ok {
		*pairs = ps
		for _, p := range ps {
			i, j := int(p[0]), int(p[1])
			if arity > 0 {
				row = row[:0]
				if st.Arity(x) > 0 {
					row = append(row, st.KidRow(x, i)...)
				}
				if st.Arity(y) > 0 {
					row = append(row, st.KidRow(y, j)...)
				}
				b.Append(xv[i], row)
			} else {
				b.Append(xv[i], nil)
			}
		}
		return b.Finish()
	}
	i, j := 0, 0
	for i < len(xv) && j < len(yv) {
		c := values.Compare(xv[i], yv[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			if arity > 0 {
				row = row[:0]
				if st.Arity(x) > 0 {
					row = append(row, st.KidRow(x, i)...)
				}
				if st.Arity(y) > 0 {
					row = append(row, st.KidRow(y, j)...)
				}
				b.Append(xv[i], row)
			} else {
				b.Append(xv[i], nil)
			}
			i++
			j++
		}
	}
	return b.Finish()
}

// Absorb implements the equality selection attrAnc = attrDesc when
// attrDesc's node is a strict descendant of attrAnc's node; see
// FRel.Absorb.
func (ar *ARel) Absorb(attrAnc, attrDesc string) error {
	a := ar.Tree.ResolveAttr(attrAnc)
	d := ar.Tree.ResolveAttr(attrDesc)
	if a == nil || d == nil {
		return fmt.Errorf("fops: absorb: unknown attribute %q or %q", attrAnc, attrDesc)
	}
	if a == d {
		return nil
	}
	plan, err := ftree.PlanAbsorb(a, d)
	if err != nil {
		return err
	}
	ri, path, err := ar.pathFromRoot(a)
	if err != nil {
		return err
	}
	dLeaf := d.IsLeaf()
	dn := 0 // hoisted children of the descendant
	if !dLeaf {
		dn = len(d.Children)
	}
	err = ar.rebuildAt(ri, path, func(st *frep.Store) rebuildFn {
		var b frep.UnionBuilder
		return func(ua frep.NodeID) (frep.NodeID, error) {
			// The row width changes only at the descendant's parent: it loses
			// the descendant and gains its hoisted children.
			newArity := st.Arity(ua)
			if len(plan.Path) == 1 {
				newArity += dn - 1
			}
			b.Reset(st, newArity)
			for i, v := range st.Vals(ua) {
				row, ok := absorbRowIn(st, st.KidRow(ua, i), plan.Path, v, dLeaf, dn)
				if !ok {
					continue
				}
				b.Append(v, row)
			}
			return b.Finish(), nil
		}
	})
	if err != nil {
		return err
	}
	ar.Tree.ApplyAbsorb(plan)
	if ar.IsEmpty() {
		ar.MakeEmpty()
	}
	return nil
}

// absorbRowIn restricts the descendant (reached through path) to value v
// and splices its children into the containing row. ok=false when the
// value is absent (context pruned).
func absorbRowIn(st *frep.Store, row []frep.NodeID, path []int, v values.Value, dLeaf bool, dn int) ([]frep.NodeID, bool) {
	p := path[0]
	if len(path) == 1 {
		du := row[p]
		// FindValue binary-searches through a kernel when the union's run
		// is kind-homogeneous, and via scalar sort.Search otherwise.
		pos, found := st.FindValue(du, v)
		if !found {
			return nil, false
		}
		var hoist []frep.NodeID
		if !dLeaf {
			hoist = st.KidRow(du, pos)
		}
		out := make([]frep.NodeID, 0, len(row)-1+len(hoist))
		out = append(out, row[:p]...)
		out = append(out, hoist...)
		out = append(out, row[p+1:]...)
		return out, true
	}
	mid := row[p]
	var b frep.UnionBuilder
	// The intermediate node's rows keep their width unless the next hop
	// is the descendant itself, in which case they lose the descendant
	// and gain its hoisted children.
	width := st.Arity(mid)
	if len(path) == 2 {
		width += dn - 1
	}
	b.Reset(st, width)
	for j, w := range st.Vals(mid) {
		r2, ok := absorbRowIn(st, st.KidRow(mid, j), path[1:], v, dLeaf, dn)
		if !ok {
			continue
		}
		b.Append(w, r2)
	}
	nm := b.Finish()
	if st.Len(nm) == 0 {
		return nil, false
	}
	out := make([]frep.NodeID, len(row))
	copy(out, row)
	out[p] = nm
	return out, true
}

// RemoveLeaf implements projection away of a leaf node; see
// FRel.RemoveLeaf.
func (ar *ARel) RemoveLeaf(attr string) error {
	n := ar.Tree.ResolveAttr(attr)
	if n == nil {
		return fmt.Errorf("fops: remove: unknown attribute %q", attr)
	}
	plan, err := ftree.PlanRemoveLeaf(ar.Tree, n)
	if err != nil {
		return err
	}
	wasEmpty := ar.IsEmpty()
	if n.Parent == nil && len(ar.Roots) == 1 && wasEmpty {
		// Removing the last attribute of ∅ would leave the nullary ⟨⟩,
		// which represents one tuple, not zero. Refuse.
		return fmt.Errorf("fops: remove: cannot project away the last attribute of an empty relation")
	}
	if n.Parent == nil {
		ar.Roots = append(ar.Roots[:plan.Idx], ar.Roots[plan.Idx+1:]...)
	} else {
		ri, path, err := ar.pathFromRoot(n.Parent)
		if err != nil {
			return err
		}
		err = ar.rebuildAt(ri, path, func(st *frep.Store) rebuildFn {
			var b frep.UnionBuilder
			var scratch []frep.NodeID
			return func(id frep.NodeID) (frep.NodeID, error) {
				if st.Len(id) == 0 {
					return frep.EmptyNode, nil
				}
				if frep.EnableKernels {
					// Every value survives; only the kid rows narrow. Copy
					// the slab windows wholesale instead of building per
					// value.
					return st.RemoveKidColumn(id, plan.Idx), nil
				}
				arity := st.Arity(id)
				b.Reset(st, arity-1)
				for i, v := range st.Vals(id) {
					row := st.KidRow(id, i)
					scratch = scratch[:0]
					scratch = append(scratch, row[:plan.Idx]...)
					scratch = append(scratch, row[plan.Idx+1:]...)
					b.Append(v, scratch)
				}
				return b.Finish(), nil
			}
		})
		if err != nil {
			return err
		}
	}
	ar.Tree.ApplyRemoveLeaf(plan)
	if wasEmpty {
		ar.MakeEmpty()
	}
	return nil
}

// Rename renames an attribute: names live in the f-tree, so this is
// identical to FRel.Rename and constant time.
func (ar *ARel) Rename(attr, to string) error {
	n := ar.Tree.ResolveAttr(attr)
	if n == nil {
		return fmt.Errorf("fops: rename: unknown attribute %q", attr)
	}
	if n.IsAgg() {
		n.Alias = to
		return nil
	}
	for i, a := range n.Attrs {
		if a == attr {
			n.Attrs[i] = to
			return nil
		}
	}
	return fmt.Errorf("fops: rename: attribute %q not found in class %s", attr, n.Label())
}

// Gamma applies the aggregation operator γ_F(U) of Section 3; see
// FRel.Gamma.
func (ar *ARel) Gamma(attr string, fields []ftree.AggField) error {
	n := ar.Tree.ResolveAttr(attr)
	if n == nil {
		return fmt.Errorf("fops: γ: unknown attribute %q", attr)
	}
	return ar.GammaNode(n, fields)
}

// GammaNode is Gamma addressing the subtree root node directly.
func (ar *ARel) GammaNode(u *ftree.Node, fields []ftree.AggField) error {
	plan, err := ftree.PlanAgg(ar.Tree, u, fields)
	if err != nil {
		return err
	}
	// Compile once up front so composition errors (Proposition 2)
	// surface even when the occurrence loop never runs.
	if _, err := frep.NewEvaluator(u, fields); err != nil {
		return err
	}
	ri, path, err := ar.pathFromRoot(u)
	if err != nil {
		return err
	}
	wasEmpty := ar.IsEmpty()
	if len(path) == 0 && ar.Par > 1 {
		// γ at a root: a single occurrence covering the whole tree, so
		// the parallelism lives inside the evaluation — segments of the
		// root union evaluate independently and merge associatively.
		out := make([]values.Value, len(fields))
		if err := frep.ParallelEvalStore(u, fields, ar.Store, ar.Roots[ri], ar.Par, out); err != nil {
			return err
		}
		var one [1]values.Value
		if len(out) == 1 {
			one[0] = out[0]
		} else {
			one[0] = values.NewVec(out)
		}
		ar.Roots[ri] = ar.Store.AddLeaf(one[:])
	} else {
		err = ar.rebuildAt(ri, path, func(st *frep.Store) rebuildFn {
			ev, evErr := frep.NewEvaluator(u, fields)
			vals := make([]values.Value, len(fields))
			var one [1]values.Value
			return func(sub frep.NodeID) (frep.NodeID, error) {
				if evErr != nil {
					return frep.EmptyNode, evErr
				}
				if err := ev.EvalStoreInto(st, sub, vals); err != nil {
					return frep.EmptyNode, err
				}
				if len(vals) == 1 {
					one[0] = vals[0]
				} else {
					// NewVec retains its argument; copy out of the reused scratch.
					one[0] = values.NewVec(append([]values.Value{}, vals...))
				}
				return st.AddLeaf(one[:]), nil
			}
		})
		if err != nil {
			return err
		}
	}
	ar.Tree.ApplyAgg(plan)
	if wasEmpty {
		ar.MakeEmpty()
	}
	return nil
}

// ComputeScalar converts a leaf aggregate node into an atomic node named
// newName whose values are fn applied to the stored aggregates,
// re-sorted and deduplicated; see FRel.ComputeScalar.
func (ar *ARel) ComputeScalar(attr, newName string, fn func(values.Value) values.Value) error {
	n := ar.Tree.ResolveAttr(attr)
	if n == nil {
		return fmt.Errorf("fops: compute: unknown attribute %q", attr)
	}
	if !n.IsAgg() {
		return fmt.Errorf("fops: compute: %q is not an aggregate node", attr)
	}
	if !n.IsLeaf() {
		return fmt.Errorf("fops: compute: aggregate node %q must be a leaf", attr)
	}
	ri, path, err := ar.pathFromRoot(n)
	if err != nil {
		return err
	}
	err = ar.rebuildAt(ri, path, func(st *frep.Store) rebuildFn {
		var mapped []values.Value
		var b frep.UnionBuilder
		return func(id frep.NodeID) (frep.NodeID, error) {
			mapped = mapped[:0]
			for _, v := range st.Vals(id) {
				mapped = append(mapped, fn(v))
			}
			sort.Slice(mapped, func(a, c int) bool { return values.Less(mapped[a], mapped[c]) })
			b.Reset(st, 0)
			for k, v := range mapped {
				if k > 0 && values.Compare(mapped[k-1], v) == 0 {
					continue
				}
				b.Append(v, nil)
			}
			return b.Finish(), nil
		}
	})
	if err != nil {
		return err
	}
	n.Agg = nil
	n.Alias = ""
	n.Attrs = []string{newName}
	return nil
}
