package fops

// Direct verification of Proposition 2 (Section 3.1), the composition
// rules for aggregation operators, on factorised data: evaluating a
// decomposed sequence of γ operators must produce exactly the same
// factorised relation as the single direct γ.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/values"
)

// buildChain builds a random relation over (a,b,c,d) factorised as the
// linear path a→b→c→d.
func buildChain(rng *rand.Rand) (*FRel, error) {
	attrs := []string{"a", "b", "c", "d"}
	n := 1 + rng.Intn(40)
	ts := make([]relation.Tuple, n)
	for i := range ts {
		tp := make(relation.Tuple, len(attrs))
		for j := range tp {
			tp[j] = iv(int64(rng.Intn(4)))
		}
		ts[i] = tp
	}
	rel := relation.MustNew("R", attrs, ts).Dedup()
	f := ftree.New()
	f.NewRelationPath(attrs...)
	return FromRelation(rel, f)
}

// flattenOf returns the flattened relation for comparison.
func flattenOf(t *testing.T, fr *FRel) *relation.Relation {
	t.Helper()
	flat, err := fr.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	return flat
}

// Rule 1: γ_F(U) ∘ γ_F(V) = γ_F(U) for V ⊆ U, for F ∈ {count, min, max}
// and for sum when the argument is in V.
func TestProp2NestedComposition(t *testing.T) {
	fieldSets := [][]ftree.AggField{
		{{Fn: ftree.Count}},
		{{Fn: ftree.Min, Arg: "d"}},
		{{Fn: ftree.Max, Arg: "d"}},
		{{Fn: ftree.Sum, Arg: "d"}},
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fields := fieldSets[rng.Intn(len(fieldSets))]
		direct, err := buildChain(rng)
		if err != nil {
			return false
		}
		decomposed, _ := direct.Clone()

		// Direct: γ over the subtree rooted at b (V=U case uses c ⊂ b).
		if err := direct.Gamma("b", fields); err != nil {
			return false
		}
		// Decomposed: first γ over the subtree rooted at c (V ⊂ U), then
		// γ over the subtree rooted at b.
		if err := decomposed.Gamma("c", fields); err != nil {
			return false
		}
		if err := decomposed.Gamma("b", fields); err != nil {
			return false
		}
		a, err := direct.Flatten()
		if err != nil {
			return false
		}
		b, err := decomposed.Flatten()
		if err != nil {
			return false
		}
		// Output column names differ (different Over sets), so align by
		// position: (a, aggregate).
		if a.Cardinality() != b.Cardinality() {
			return false
		}
		av := relation.MustNew("A", []string{"a", "v"}, a.Tuples)
		bv := relation.MustNew("B", []string{"a", "v"}, b.Tuples)
		return relation.EqualAsSets(av, bv)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Rule 2: γ_sumA(U) ∘ γ_count(V) = γ_sumA(U) for V ⊆ U with A ∉ V.
func TestProp2SumOverCount(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		direct, err := buildChain(rng)
		if err != nil {
			return false
		}
		decomposed, _ := direct.Clone()

		// sum(b) over the subtree rooted at b: V = {c,d}? A=b ∉ V: count
		// the (c,d) part first, then sum.
		sumB := []ftree.AggField{{Fn: ftree.Sum, Arg: "b"}}
		if err := direct.Gamma("b", sumB); err != nil {
			return false
		}
		if err := decomposed.Gamma("c", []ftree.AggField{{Fn: ftree.Count}}); err != nil {
			return false
		}
		if err := decomposed.Gamma("b", sumB); err != nil {
			return false
		}
		a, err := direct.Flatten()
		if err != nil {
			return false
		}
		b, err := decomposed.Flatten()
		if err != nil {
			return false
		}
		av := relation.MustNew("A", []string{"a", "v"}, a.Tuples)
		bv := relation.MustNew("B", []string{"a", "v"}, b.Tuples)
		return relation.EqualAsSets(av, bv)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Rule 3: disjoint aggregates commute: γ_F(U) ∘ γ_G(V) = γ_G(V) ∘ γ_F(U)
// for U ∩ V = ∅.
func TestProp2DisjointCommute(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Tree with two disjoint subtrees under the root: a → {b, c→d}.
		n := 1 + rng.Intn(40)
		ts := make([]relation.Tuple, n)
		for i := range ts {
			ts[i] = relation.Tuple{
				iv(int64(rng.Intn(3))), iv(int64(rng.Intn(4))),
				iv(int64(rng.Intn(4))), iv(int64(rng.Intn(4))),
			}
		}
		rel := relation.MustNew("R", []string{"a", "b", "c", "d"}, ts).Dedup()
		f := ftree.New()
		f.NewRelationPath("a", "b", "c", "d")
		fr, err := FromRelation(rel, f)
		if err != nil {
			return false
		}
		// Restructure to a → {b, c → d}: swap c above... simpler: keep
		// the chain and use the disjoint subtrees {d} under c and {b}…
		// {b}'s subtree contains c and d. Instead aggregate the leaf d
		// and, separately, construct the sibling shape via a swap of c.
		// Use subtrees U = {d} (leaf) and V = … not disjoint on a chain;
		// swap d up to make b → {c, d} siblings? Simply: swap c with b:
		// a → c → {b?…}. To keep this robust we factorise over the
		// sibling tree directly when valid.
		fb, err := buildSibling(rel)
		if err != nil {
			// Sibling decomposition invalid for this relation (b and
			// (c,d) dependent): skip.
			return true
		}
		_ = fr
		one, _ := fb.Clone()
		two, _ := fb.Clone()
		fU := []ftree.AggField{{Fn: ftree.Count}}
		fV := []ftree.AggField{{Fn: ftree.Sum, Arg: "d"}}
		if err := one.Gamma("b", fU); err != nil {
			return false
		}
		if err := one.Gamma("c", fV); err != nil {
			return false
		}
		if err := two.Gamma("c", fV); err != nil {
			return false
		}
		if err := two.Gamma("b", fU); err != nil {
			return false
		}
		a1, err := one.Flatten()
		if err != nil {
			return false
		}
		a2, err := two.Flatten()
		if err != nil {
			return false
		}
		// Column order differs (b-agg and c-agg swap places); compare as
		// sets after aligning by attribute names.
		return relation.EqualAsSets(a1, a2)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// buildSibling factorises rel over a → {b, c → d}, which requires b ⟂
// (c,d) given a; returns an error when the data does not satisfy it.
func buildSibling(rel *relation.Relation) (*FRel, error) {
	// Make the decomposition valid by construction: replace rel with
	// π_{a,b}(rel) ⋈ π_{a,c,d}(rel).
	ab, err := rel.Project("a", "b")
	if err != nil {
		return nil, err
	}
	acd, err := rel.Project("a", "c", "d")
	if err != nil {
		return nil, err
	}
	j := relation.NaturalJoin(ab, acd)
	f := ftree.New()
	t1, t2 := f.NewToken(), f.NewToken()
	a := &ftree.Node{Attrs: []string{"a"}, Deps: ftree.NewTokenSet(t1, t2)}
	b := &ftree.Node{Attrs: []string{"b"}, Deps: ftree.NewTokenSet(t1), Parent: a}
	c := &ftree.Node{Attrs: []string{"c"}, Deps: ftree.NewTokenSet(t2), Parent: a}
	d := &ftree.Node{Attrs: []string{"d"}, Deps: ftree.NewTokenSet(t2), Parent: c}
	a.Children = []*ftree.Node{b, c}
	c.Children = []*ftree.Node{d}
	f.Roots = []*ftree.Node{a}
	return FromRelation(j, f)
}

// The γ operator and the relational ϖ agree on every subtree of a chain
// (grouping by the path above the subtree).
func TestGammaSubtreeChoicesProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fr, err := buildChain(rng)
		if err != nil {
			return false
		}
		target := []string{"b", "c", "d"}[rng.Intn(3)]
		fields := []ftree.AggField{{Fn: ftree.Count}, {Fn: ftree.Sum, Arg: "d"}}
		ref, err := fr.Flatten()
		if err != nil {
			return false
		}
		if err := fr.Gamma(target, fields); err != nil {
			return false
		}
		got, err := fr.Flatten()
		if err != nil {
			return false
		}
		// Reference group-by over the attributes above target.
		var group []int
		switch target {
		case "b":
			group = []int{0}
		case "c":
			group = []int{0, 1}
		case "d":
			group = []int{0, 1, 2}
		}
		type acc struct{ cnt, sum int64 }
		refAgg := map[string]*acc{}
		var kb []byte
		for _, tp := range ref.Tuples {
			kb = kb[:0]
			for _, g := range group {
				kb = tp[g].AppendKey(kb)
			}
			k := string(kb)
			if refAgg[k] == nil {
				refAgg[k] = &acc{}
			}
			refAgg[k].cnt++
			refAgg[k].sum += tp[3].Int()
		}
		if got.Cardinality() != len(refAgg) {
			return false
		}
		for _, tp := range got.Tuples {
			kb = kb[:0]
			for i := range group {
				kb = tp[i].AppendKey(kb)
			}
			g := refAgg[string(kb)]
			if g == nil {
				return false
			}
			// Multi-field aggregate nodes flatten to one column per field.
			if tp[len(group)].Int() != g.cnt || values.Compare(tp[len(group)+1], iv(g.sum)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
