package fops

import (
	"fmt"
	"sort"

	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/values"
)

// CmpOp is a comparison operator for selections with constants.
type CmpOp uint8

// Supported comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "<>"
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Holds reports whether "a op b" holds under the total value order.
func (op CmpOp) Holds(a, b values.Value) bool {
	c := values.Compare(a, b)
	switch op {
	case EQ:
		return c == 0
	case NE:
		return c != 0
	case LT:
		return c < 0
	case LE:
		return c <= 0
	case GT:
		return c > 0
	case GE:
		return c >= 0
	default:
		return false
	}
}

// SelectConst applies the selection σ_{attr op c} in one traversal of the
// representation, filtering the attribute's unions and pruning emptied
// contexts.
func (fr *FRel) SelectConst(attr string, op CmpOp, c values.Value) error {
	n := fr.Tree.ResolveAttr(attr)
	if n == nil {
		return fmt.Errorf("fops: select: unknown attribute %q", attr)
	}
	ri, path, err := fr.pathFromRoot(n)
	if err != nil {
		return err
	}
	fr.rebuildAt(ri, path, func(u *frep.Union) *frep.Union {
		out := &frep.Union{}
		if u.Kids != nil {
			out.Kids = [][]*frep.Union{}
		}
		for i, v := range u.Vals {
			if !op.Holds(v, c) {
				continue
			}
			out.Vals = append(out.Vals, v)
			if u.Kids != nil {
				out.Kids = append(out.Kids, u.Kids[i])
			}
		}
		return out
	})
	return nil
}

// Merge implements the equality selection attrA = attrB when the two
// attributes' nodes are siblings (children of the same node, or both
// roots): the sorted value lists are intersected, the two nodes' children
// are concatenated, and the two classes become one (the paper's merge
// operator).
func (fr *FRel) Merge(attrA, attrB string) error {
	x := fr.Tree.ResolveAttr(attrA)
	y := fr.Tree.ResolveAttr(attrB)
	if x == nil || y == nil {
		return fmt.Errorf("fops: merge: unknown attribute %q or %q", attrA, attrB)
	}
	if x == y {
		return nil // already equal
	}
	plan, err := ftree.PlanMerge(fr.Tree, x, y)
	if err != nil {
		return err
	}
	mergeData := func(row []*frep.Union) ([]*frep.Union, bool) {
		ux, uy := row[plan.XIdx], row[plan.YIdx]
		merged := intersectUnions(ux, uy)
		if merged.IsEmpty() {
			return nil, false
		}
		out := make([]*frep.Union, 0, len(row)-1)
		for k, u := range row {
			switch k {
			case plan.XIdx:
				out = append(out, merged)
			case plan.YIdx:
				// dropped
			default:
				out = append(out, u)
			}
		}
		return out, true
	}
	if plan.Parent == nil {
		row, ok := mergeData(fr.Roots)
		if !ok {
			fr.Tree.ApplyMerge(plan)
			fr.Roots = fr.Roots[:len(fr.Roots)-1]
			fr.MakeEmpty()
			return nil
		}
		fr.Roots = row
	} else {
		ri, path, err := fr.pathFromRoot(plan.Parent)
		if err != nil {
			return err
		}
		fr.rebuildAt(ri, path, func(u *frep.Union) *frep.Union {
			out := &frep.Union{Kids: [][]*frep.Union{}}
			for i, v := range u.Vals {
				row, ok := mergeData(u.Kids[i])
				if !ok {
					continue
				}
				out.Vals = append(out.Vals, v)
				out.Kids = append(out.Kids, row)
			}
			return out
		})
	}
	fr.Tree.ApplyMerge(plan)
	if fr.IsEmpty() {
		fr.MakeEmpty()
	}
	return nil
}

// intersectUnions intersects two sorted unions; for each common value the
// children of both sides are concatenated (x's children first), matching
// the merged node's child order.
func intersectUnions(x, y *frep.Union) *frep.Union {
	out := &frep.Union{}
	hasKids := x.Kids != nil || y.Kids != nil
	if hasKids {
		out.Kids = [][]*frep.Union{}
	}
	i, j := 0, 0
	for i < len(x.Vals) && j < len(y.Vals) {
		c := values.Compare(x.Vals[i], y.Vals[j])
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out.Vals = append(out.Vals, x.Vals[i])
			if hasKids {
				row := make([]*frep.Union, 0, len(x.KidsAt(i))+len(y.KidsAt(j)))
				row = append(row, x.KidsAt(i)...)
				row = append(row, y.KidsAt(j)...)
				out.Kids = append(out.Kids, row)
			}
			i++
			j++
		}
	}
	return out
}

// Absorb implements the equality selection attrAnc = attrDesc when
// attrDesc's node is a strict descendant of attrAnc's node: within each
// ancestor value's context the descendant union is restricted to that
// value, the descendant node's class is absorbed into the ancestor's, and
// its children are hoisted to its parent (the paper's absorb operator).
func (fr *FRel) Absorb(attrAnc, attrDesc string) error {
	a := fr.Tree.ResolveAttr(attrAnc)
	d := fr.Tree.ResolveAttr(attrDesc)
	if a == nil || d == nil {
		return fmt.Errorf("fops: absorb: unknown attribute %q or %q", attrAnc, attrDesc)
	}
	if a == d {
		return nil
	}
	plan, err := ftree.PlanAbsorb(a, d)
	if err != nil {
		return err
	}
	ri, path, err := fr.pathFromRoot(a)
	if err != nil {
		return err
	}
	dLeaf := d.IsLeaf()
	fr.rebuildAt(ri, path, func(ua *frep.Union) *frep.Union {
		out := &frep.Union{Kids: [][]*frep.Union{}}
		for i, v := range ua.Vals {
			row, ok := absorbRow(ua.Kids[i], plan.Path, v, dLeaf)
			if !ok {
				continue
			}
			out.Vals = append(out.Vals, v)
			out.Kids = append(out.Kids, row)
		}
		return out
	})
	fr.Tree.ApplyAbsorb(plan)
	if fr.IsEmpty() {
		fr.MakeEmpty()
	}
	return nil
}

// absorbRow restricts the descendant (reached through path) to value v and
// splices its children into the containing row. ok=false when the value is
// absent (context pruned).
func absorbRow(row []*frep.Union, path []int, v values.Value, dLeaf bool) ([]*frep.Union, bool) {
	p := path[0]
	if len(path) == 1 {
		du := row[p]
		pos := sort.Search(len(du.Vals), func(k int) bool {
			return values.Compare(du.Vals[k], v) >= 0
		})
		if pos >= len(du.Vals) || values.Compare(du.Vals[pos], v) != 0 {
			return nil, false
		}
		out := make([]*frep.Union, 0, len(row)-1+len(du.KidsAt(pos)))
		out = append(out, row[:p]...)
		if !dLeaf {
			out = append(out, du.Kids[pos]...)
		}
		out = append(out, row[p+1:]...)
		return out, true
	}
	mid := row[p]
	nm := &frep.Union{Kids: [][]*frep.Union{}}
	for j, w := range mid.Vals {
		r2, ok := absorbRow(mid.Kids[j], path[1:], v, dLeaf)
		if !ok {
			continue
		}
		nm.Vals = append(nm.Vals, w)
		nm.Kids = append(nm.Kids, r2)
	}
	if nm.IsEmpty() {
		return nil, false
	}
	out := make([]*frep.Union, len(row))
	copy(out, row)
	out[p] = nm
	return out, true
}

// RemoveLeaf implements projection away of a leaf node: the node's unions
// disappear from their containing rows. Set semantics — no duplicates
// arise because the remaining factors of each product are untouched. Use
// the aggregation operator instead when multiplicities matter.
func (fr *FRel) RemoveLeaf(attr string) error {
	n := fr.Tree.ResolveAttr(attr)
	if n == nil {
		return fmt.Errorf("fops: remove: unknown attribute %q", attr)
	}
	plan, err := ftree.PlanRemoveLeaf(fr.Tree, n)
	if err != nil {
		return err
	}
	wasEmpty := fr.IsEmpty()
	if n.Parent == nil && len(fr.Roots) == 1 && wasEmpty {
		// Removing the last attribute of ∅ would leave the nullary ⟨⟩,
		// which represents one tuple, not zero. Refuse.
		return fmt.Errorf("fops: remove: cannot project away the last attribute of an empty relation")
	}
	if n.Parent == nil {
		fr.Roots = append(fr.Roots[:plan.Idx], fr.Roots[plan.Idx+1:]...)
	} else {
		ri, path, err := fr.pathFromRoot(n.Parent)
		if err != nil {
			return err
		}
		fr.rebuildAt(ri, path, func(u *frep.Union) *frep.Union {
			out := &frep.Union{Vals: u.Vals}
			if u.Kids != nil {
				out.Kids = make([][]*frep.Union, len(u.Kids))
				for i, row := range u.Kids {
					nr := make([]*frep.Union, 0, len(row)-1)
					nr = append(nr, row[:plan.Idx]...)
					nr = append(nr, row[plan.Idx+1:]...)
					out.Kids[i] = nr
				}
			}
			return out
		})
	}
	fr.Tree.ApplyRemoveLeaf(plan)
	if wasEmpty {
		fr.MakeEmpty()
	}
	return nil
}

// Rename renames an attribute: for an atomic attribute the class member is
// renamed; for an aggregate node (referenced by its label or current
// alias) the alias is set. Constant time — names live in the f-tree.
func (fr *FRel) Rename(attr, to string) error {
	n := fr.Tree.ResolveAttr(attr)
	if n == nil {
		return fmt.Errorf("fops: rename: unknown attribute %q", attr)
	}
	if n.IsAgg() {
		n.Alias = to
		return nil
	}
	for i, a := range n.Attrs {
		if a == attr {
			n.Attrs[i] = to
			return nil
		}
	}
	return fmt.Errorf("fops: rename: attribute %q not found in class %s", attr, n.Label())
}
