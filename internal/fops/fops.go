// Package fops implements the f-plan operators of the FDB engine on
// coupled (f-tree, factorised representation) pairs: the restructuring
// operators swap, merge, absorb, selection with a constant, projection
// (remove leaf) and renaming from Bakibayev et al. (PVLDB 2012), and the
// new aggregation operator γ_F(U) of Section 3 of the paper.
//
// Every operator transforms the f-tree (via the plan/apply split of
// package ftree) and the representation consistently, preserving the
// representation invariants: values in unions stay sorted and distinct,
// and empty unions are pruned upwards.
package fops

import (
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/relation"
)

// Paranoid enables expensive internal consistency checks inside operators
// (for example, verifying that subtrees classified as independent during a
// swap really are equal across contexts). Tests enable it; benchmarks run
// with it off.
var Paranoid = false

// FRel is a factorised relation: an f-tree together with a representation
// over it (one Union per f-tree root).
type FRel struct {
	Tree  *ftree.Forest
	Roots []*frep.Union
}

// FromRelation factorises a relation over the f-tree, verifying the
// decomposition (frep.Build).
func FromRelation(rel *relation.Relation, f *ftree.Forest) (*FRel, error) {
	roots, err := frep.Build(rel, f)
	if err != nil {
		return nil, err
	}
	return &FRel{Tree: f, Roots: roots}, nil
}

// FromRelationUnchecked factorises without verifying the decomposition;
// use only for f-trees known to be valid (for example linear paths).
func FromRelationUnchecked(rel *relation.Relation, f *ftree.Forest) (*FRel, error) {
	roots, err := frep.BuildUnchecked(rel, f)
	if err != nil {
		return nil, err
	}
	return &FRel{Tree: f, Roots: roots}, nil
}

// Clone deep-copies the factorised relation. The returned FRel's tree
// nodes correspond to the original's via the second return value.
func (fr *FRel) Clone() (*FRel, map[*ftree.Node]*ftree.Node) {
	t, corr := fr.Tree.Clone()
	return &FRel{Tree: t, Roots: frep.CloneAll(fr.Roots)}, corr
}

// Forest implements Rel.
func (fr *FRel) Forest() *ftree.Forest { return fr.Tree }

// Enumerator implements Rel.
func (fr *FRel) Enumerator(order []frep.OrderSpec) (frep.TupleEnum, error) {
	return frep.NewEnumerator(fr.Tree, fr.Roots, order)
}

// GroupEnumerator implements Rel.
func (fr *FRel) GroupEnumerator(g []frep.OrderSpec, fields []ftree.AggField) (frep.GroupEnum, error) {
	return frep.NewGroupEnumerator(fr.Tree, fr.Roots, g, fields)
}

// IsEmpty reports whether the represented relation is empty (some root
// union has no values).
func (fr *FRel) IsEmpty() bool {
	for _, r := range fr.Roots {
		if r.IsEmpty() {
			return true
		}
	}
	return false
}

// MakeEmpty canonicalises an empty representation: every root union
// becomes empty.
func (fr *FRel) MakeEmpty() {
	for i := range fr.Roots {
		fr.Roots[i] = &frep.Union{}
	}
}

// Check verifies the representation invariants against the f-tree;
// intended for tests and Paranoid mode.
func (fr *FRel) Check() error {
	if err := fr.Tree.Validate(); err != nil {
		return err
	}
	return frep.CheckInvariantsAll(fr.Tree, fr.Roots)
}

// Flatten materialises the represented relation (plain values; aggregate
// nodes contribute their stored values).
func (fr *FRel) Flatten() (*relation.Relation, error) {
	return frep.Flatten(fr.Tree, fr.Roots)
}

// Singletons returns the representation size in singletons.
func (fr *FRel) Singletons() int { return frep.SingletonsAll(fr.Roots) }

// pathFromRoot returns the index of n's root tree and the child-index
// path from that root down to n (empty when n is a root).
func (fr *FRel) pathFromRoot(n *ftree.Node) (int, []int, error) {
	return pathFromRoot(fr.Tree, n)
}

// rebuildAt applies fn to every occurrence of the node identified by
// (rootIdx, path), pruning values whose transformed subtree became empty.
// fn receives an occurrence union and returns its replacement (which may
// be empty to delete the context).
func (fr *FRel) rebuildAt(rootIdx int, path []int, fn func(*frep.Union) *frep.Union) {
	fr.Roots[rootIdx] = rebuild(fr.Roots[rootIdx], path, fn)
	if fr.IsEmpty() {
		fr.MakeEmpty()
	}
}

func rebuild(u *frep.Union, path []int, fn func(*frep.Union) *frep.Union) *frep.Union {
	if len(path) == 0 {
		return fn(u)
	}
	p := path[0]
	out := &frep.Union{}
	if u.Kids != nil {
		out.Kids = [][]*frep.Union{}
	}
	for i := range u.Vals {
		row := u.Kids[i]
		nk := rebuild(row[p], path[1:], fn)
		if nk.IsEmpty() {
			continue // prune this value
		}
		newRow := make([]*frep.Union, len(row))
		copy(newRow, row)
		newRow[p] = nk
		out.Vals = append(out.Vals, u.Vals[i])
		out.Kids = append(out.Kids, newRow)
	}
	return out
}
