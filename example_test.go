package fdb_test

import (
	"context"
	"fmt"
	"strings"

	"github.com/factordb/fdb"
)

// exampleDB builds the paper's running pizzeria example: orders join
// pizzas join item prices.
func exampleDB() fdb.Database {
	read := func(name, csv string) *fdb.Relation {
		rel, err := fdb.ReadCSV(name, strings.NewReader(csv))
		if err != nil {
			panic(err)
		}
		return rel
	}
	return fdb.Database{
		"Orders": read("Orders",
			"customer,date,pizza\n"+
				"Mario,Monday,Capricciosa\n"+
				"Mario,Tuesday,Margherita\n"+
				"Pietro,Friday,Hawaii\n"+
				"Lucia,Friday,Hawaii\n"+
				"Mario,Friday,Capricciosa\n"),
		"Pizzas": read("Pizzas",
			"pizza2,item\n"+
				"Margherita,base\nCapricciosa,base\nCapricciosa,ham\nCapricciosa,mushrooms\n"+
				"Hawaii,base\nHawaii,ham\nHawaii,pineapple\n"),
		"Items": read("Items",
			"item2,price\nbase,6\nham,1\nmushrooms,1\npineapple,2\n"),
	}
}

// Example runs the quickstart query: revenue per customer over the
// three-way join, grouped, ordered and evaluated on the factorised form.
func Example() {
	db := exampleDB()
	q, err := fdb.ParseSQL(`SELECT customer, SUM(price) AS revenue
		FROM Orders, Pizzas, Items
		WHERE pizza = pizza2 AND item = item2
		GROUP BY customer ORDER BY revenue DESC, customer`)
	if err != nil {
		panic(err)
	}
	res, err := fdb.NewEngine().Run(q, db)
	if err != nil {
		panic(err)
	}
	res.ForEach(func(t fdb.Tuple) bool {
		fmt.Printf("%s %s\n", t[0], t[1])
		return true
	})
	// Output:
	// Mario 22
	// Lucia 9
	// Pietro 9
}

// ExampleReadCSV loads a relation from CSV; fields parse as int, then
// float, then string.
func ExampleReadCSV() {
	rel, err := fdb.ReadCSV("Items", strings.NewReader("item,price\nbase,6\nham,1\n"))
	if err != nil {
		panic(err)
	}
	fmt.Println(rel.Name, rel.Attrs, rel.Cardinality())
	// Output:
	// Items [item price] 2
}

// ExampleEngine_Run evaluates an ORDER BY / LIMIT query: enumeration is
// constant-delay directly on the factorised result, so LIMIT k touches
// only the first k tuples.
func ExampleEngine_Run() {
	db := exampleDB()
	q, err := fdb.ParseSQL(`SELECT customer, pizza FROM Orders
		ORDER BY customer, pizza LIMIT 3`)
	if err != nil {
		panic(err)
	}
	res, err := fdb.NewEngine().Run(q, db)
	if err != nil {
		panic(err)
	}
	res.ForEach(func(t fdb.Tuple) bool {
		fmt.Printf("%s %s\n", t[0], t[1])
		return true
	})
	// Output:
	// Lucia Hawaii
	// Mario Capricciosa
	// Mario Margherita
}

// ExampleEngine_Prepare compiles a query once and executes it many
// times, skipping path-order search and f-plan optimisation on the hot
// path — the mechanism behind fdbserver's plan cache.
func ExampleEngine_Prepare() {
	db := exampleDB()
	e := fdb.NewEngine()
	q, err := fdb.ParseSQL(`SELECT pizza, COUNT(*) AS n FROM Orders
		GROUP BY pizza ORDER BY n DESC, pizza`)
	if err != nil {
		panic(err)
	}
	prep, err := e.Prepare(q, db)
	if err != nil {
		panic(err)
	}
	for run := 0; run < 2; run++ {
		res, err := prep.Exec(db)
		if err != nil {
			panic(err)
		}
		n, err := res.Count()
		if err != nil {
			panic(err)
		}
		fmt.Println("groups:", n)
	}
	// Output:
	// groups: 3
	// groups: 3
}

// ExampleResult_Rows streams a paged query through the cursor API:
// OFFSET is skipped inside the constant-delay enumerator (no skipped
// row is materialised) and the context governs the enumeration.
func ExampleResult_Rows() {
	db := exampleDB()
	q, err := fdb.ParseSQL(`SELECT customer, SUM(price) AS revenue
		FROM Orders, Pizzas, Items
		WHERE pizza = pizza2 AND item = item2
		GROUP BY customer ORDER BY revenue DESC, customer
		LIMIT 2 OFFSET 1`)
	if err != nil {
		panic(err)
	}
	ctx := context.Background()
	res, err := fdb.NewEngine().RunContext(ctx, q, db)
	if err != nil {
		panic(err)
	}
	defer res.Close()
	rows, err := res.Rows(ctx)
	if err != nil {
		panic(err)
	}
	defer rows.Close()
	for rows.Next() {
		var customer string
		var revenue int64
		if err := rows.Scan(&customer, &revenue); err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d\n", customer, revenue)
	}
	if err := rows.Err(); err != nil {
		panic(err)
	}
	// Output:
	// Lucia: 9
	// Pietro: 9
}

// ExampleResult_TotalCount paginates with a result-count header: the
// cursor drains one LIMIT/OFFSET page while TotalCount reports how many
// rows the query yields before paging — on ranked (snapshot-backed or
// shared-prepared) results straight from the subtree-count index,
// without enumerating the stream.
func ExampleResult_TotalCount() {
	db := exampleDB()
	q, err := fdb.ParseSQL(`SELECT customer, pizza FROM Orders
		ORDER BY customer, pizza LIMIT 2 OFFSET 2`)
	if err != nil {
		panic(err)
	}
	res, err := fdb.NewEngine().Run(q, db)
	if err != nil {
		panic(err)
	}
	defer res.Close()
	total, err := res.TotalCount()
	if err != nil {
		panic(err)
	}
	fmt.Printf("rows 3–4 of %d\n", total)
	res.ForEach(func(t fdb.Tuple) bool {
		fmt.Printf("%s %s\n", t[0], t[1])
		return true
	})
	// Output:
	// rows 3–4 of 4
	// Mario Margherita
	// Pietro Hawaii
}

// ExampleMaterialiseView materialises a join once as a factorised view
// and runs repeated aggregation queries against it — the paper's
// read-optimised scenario.
func ExampleMaterialiseView() {
	db := exampleDB()
	e := fdb.NewEngine()
	join, err := fdb.ParseSQL(`SELECT * FROM Orders, Pizzas, Items
		WHERE pizza = pizza2 AND item = item2`)
	if err != nil {
		panic(err)
	}
	view, err := fdb.MaterialiseView(e, join, db)
	if err != nil {
		panic(err)
	}
	q, err := fdb.ParseSQL(`SELECT pizza, MIN(price) AS lo, MAX(price) AS hi
		FROM View GROUP BY pizza ORDER BY pizza`)
	if err != nil {
		panic(err)
	}
	res, err := e.RunOnView(q, view, nil)
	if err != nil {
		panic(err)
	}
	res.ForEach(func(t fdb.Tuple) bool {
		fmt.Printf("%s %s %s\n", t[0], t[1], t[2])
		return true
	})
	// Output:
	// Capricciosa 1 6
	// Hawaii 1 6
	// Margherita 6 6
}

// ExampleNormalizeSQL shows the canonical spelling used as fdbserver's
// plan-cache key: whitespace, keyword case and trailing semicolons are
// normalised away while identifier case is preserved.
func ExampleNormalizeSQL() {
	fmt.Println(fdb.NormalizeSQL("select  *\n FROM Items ;"))
	// Output:
	// SELECT * FROM Items
}
