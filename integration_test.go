// Integration tests: the full paper workload (queries Q1–Q13) evaluated
// by every engine configuration and cross-checked against the relational
// baseline at scale 2.
package fdb_test

import (
	"bytes"
	"testing"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/rdb"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/workload"
)

func TestWorkloadAllEnginesScale2(t *testing.T) {
	if testing.Short() {
		t.Skip("scale-2 integration test skipped in -short mode")
	}
	fops.Paranoid = true
	defer func() { fops.Paranoid = false }()

	d := workload.Generate(workload.Config{Scale: 2})
	view, err := d.FactorisedR1()
	if err != nil {
		t.Fatal(err)
	}
	fr3, err := d.FactorisedR3()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d.FlatR1()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := d.FlatR2()
	if err != nil {
		t.Fatal(err)
	}
	r3, err := d.R3()
	if err != nil {
		t.Fatal(err)
	}
	flatDB := rdb.DB{"R1": r1, "R2": r2, "R3": r3}
	cat := d.Catalog()

	engines := map[string]*engine.Engine{
		"eager":       {PartialAgg: true},
		"lazy":        {PartialAgg: false},
		"materialise": {PartialAgg: true, Materialise: true},
	}
	queries := map[string]*query.Query{
		"Q1": workload.Q1(), "Q2": workload.Q2(), "Q3": workload.Q3(),
		"Q4": workload.Q4(), "Q5": workload.Q5(), "Q6": workload.Q6(),
		"Q7": workload.Q7(), "Q8": workload.Q8(), "Q9": workload.Q9(),
	}
	for name, q := range queries {
		ref, err := rdb.New().Run(q, flatDB)
		if err != nil {
			t.Fatalf("%s rdb: %v", name, err)
		}
		refEager, err := (&rdb.Engine{Eager: true, Grouping: rdb.GroupHash}).Run(q, flatDB)
		if err != nil {
			t.Fatalf("%s rdb eager: %v", name, err)
		}
		if !relation.EqualAsSets(ref, refEager) {
			t.Fatalf("%s: rdb lazy and eager disagree", name)
		}
		for mode, e := range engines {
			res, err := e.RunOnView(q, view, cat)
			if err != nil {
				t.Errorf("%s [%s]: %v", name, mode, err)
				continue
			}
			got, err := res.Relation()
			if err != nil {
				t.Errorf("%s [%s]: %v", name, mode, err)
				continue
			}
			if !relation.EqualAsSets(got, ref) {
				t.Errorf("%s [%s]: FDB %d rows, RDB %d rows", name, mode, got.Cardinality(), ref.Cardinality())
			}
		}
	}

	// ORD queries: row counts against the baseline, plus order checks via
	// the ordered enumeration tests in internal packages.
	for name, tc := range map[string]struct {
		q *query.Query
		v *fops.FRel
	}{
		"Q10": {workload.Q10(0), view},
		"Q11": {workload.Q11(0), view},
		"Q12": {workload.Q12(0), view},
		"Q13": {workload.Q13(0), fr3},
	} {
		ref, err := rdb.New().Run(tc.q, flatDB)
		if err != nil {
			t.Fatalf("%s rdb: %v", name, err)
		}
		res, err := engine.New().RunOnView(tc.q, tc.v, cat)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n, err := res.Count()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if n != ref.Cardinality() {
			t.Errorf("%s: %d rows, want %d", name, n, ref.Cardinality())
		}
	}
}

func TestViewSerialisationRoundTripWorkload(t *testing.T) {
	d := workload.Generate(workload.Config{Scale: 1})
	viewFR, err := d.FactorisedR1()
	if err != nil {
		t.Fatal(err)
	}
	view := (*fdb.Factorisation)(viewFR)
	var buf bytes.Buffer
	if err := fdb.WriteView(&buf, view); err != nil {
		t.Fatal(err)
	}
	back, err := fdb.ReadView(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Singletons() != view.Singletons() {
		t.Fatalf("singletons changed: %d vs %d", back.Singletons(), view.Singletons())
	}
	// The reloaded view must be queryable.
	q, err := fdb.ParseSQL(`SELECT customer, SUM(price) AS revenue FROM V GROUP BY customer ORDER BY revenue DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fdb.NewEngine().RunOnView(q, back, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 3 {
		t.Errorf("rows = %d, want 3", rel.Cardinality())
	}
}
