package fdb_test

import (
	"strings"
	"testing"

	"github.com/factordb/fdb"
)

func pizzeria(t *testing.T) fdb.Database {
	t.Helper()
	orders, err := fdb.ReadCSV("Orders", strings.NewReader(
		"customer,date,pizza\n"+
			"Mario,Monday,Capricciosa\n"+
			"Mario,Tuesday,Margherita\n"+
			"Pietro,Friday,Hawaii\n"+
			"Lucia,Friday,Hawaii\n"+
			"Mario,Friday,Capricciosa\n"))
	if err != nil {
		t.Fatal(err)
	}
	pizzas, err := fdb.ReadCSV("Pizzas", strings.NewReader(
		"pizza2,item\n"+
			"Margherita,base\nCapricciosa,base\nCapricciosa,ham\nCapricciosa,mushrooms\n"+
			"Hawaii,base\nHawaii,ham\nHawaii,pineapple\n"))
	if err != nil {
		t.Fatal(err)
	}
	items, err := fdb.ReadCSV("Items", strings.NewReader(
		"item2,price\nbase,6\nham,1\nmushrooms,1\npineapple,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	return fdb.Database{"Orders": orders, "Pizzas": pizzas, "Items": items}
}

func TestEndToEndSQL(t *testing.T) {
	db := pizzeria(t)
	q, err := fdb.ParseSQL(`SELECT customer, SUM(price) AS revenue
		FROM Orders, Pizzas, Items
		WHERE pizza = pizza2 AND item = item2
		GROUP BY customer
		ORDER BY revenue DESC, customer`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fdb.NewEngine().Run(q, db)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 3 {
		t.Fatalf("rows = %d, want 3\n%v", rel.Cardinality(), rel)
	}
	if rel.Tuples[0][0].Str() != "Mario" || rel.Tuples[0][1].Int() != 22 {
		t.Errorf("top row = %v, want Mario,22", rel.Tuples[0])
	}
}

func TestMaterialiseAndReuseView(t *testing.T) {
	db := pizzeria(t)
	e := fdb.NewEngine()
	join, err := fdb.ParseSQL(`SELECT * FROM Orders, Pizzas, Items WHERE pizza = pizza2 AND item = item2`)
	if err != nil {
		t.Fatal(err)
	}
	view, err := fdb.MaterialiseView(e, join, db)
	if err != nil {
		t.Fatal(err)
	}
	q, err := fdb.ParseSQL(`SELECT pizza, COUNT(*) AS n, MIN(price) AS lo FROM R GROUP BY pizza ORDER BY pizza`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunOnView(q, view, nil)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := res.Relation()
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cardinality() != 3 {
		t.Fatalf("rows = %d, want 3", rel.Cardinality())
	}
	// Capricciosa: 2 orders × 3 items = 6 rows, min price 1.
	if rel.Tuples[0][1].Int() != 6 || rel.Tuples[0][2].Int() != 1 {
		t.Errorf("Capricciosa group = %v", rel.Tuples[0])
	}
}

func TestFactoriseAPI(t *testing.T) {
	db := pizzeria(t)
	tree := fdb.NewFTree()
	tree.NewRelationPath("customer", "date", "pizza")
	fr, err := fdb.Factorise(db["Orders"], tree)
	if err != nil {
		t.Fatal(err)
	}
	if fr.Singletons() == 0 {
		t.Error("factorisation should have singletons")
	}
	flat, err := fr.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Cardinality() != 5 {
		t.Errorf("flatten = %d tuples, want 5", flat.Cardinality())
	}
}

func TestValueConstructors(t *testing.T) {
	if fdb.NewInt(3).Int() != 3 || fdb.NewFloat(1.5).Float() != 1.5 ||
		fdb.NewString("x").Str() != "x" || !fdb.NewBool(true).Bool() {
		t.Error("value constructors broken")
	}
}
