package fdb_test

// Documentation lint: every relative markdown link in the top-level
// docs and docs/ must point at a file that exists, and the wire
// protocol spec must stay linked from the operator-facing pages.
// Stdlib only, so it runs in the ordinary test job.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docFiles returns the markdown files the linter covers.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "ARCHITECTURE.md", "ROADMAP.md"}
	extra, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	return append(files, extra...)
}

// mdLink matches inline markdown links; the target is group 1.
// Reference-style links and images are rare here and out of scope.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocLinksResolve(t *testing.T) {
	for _, file := range docFiles(t) {
		body, err := os.ReadFile(file)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(body), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an in-file anchor; the file itself must exist.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s): %v", file, m[1], resolved, err)
			}
		}
	}
}

// TestProtocolSpecLinked pins the docs contract: the wire protocol spec
// exists and is reachable from README and ARCHITECTURE.
func TestProtocolSpecLinked(t *testing.T) {
	if _, err := os.Stat(filepath.Join("docs", "PROTOCOL.md")); err != nil {
		t.Fatalf("docs/PROTOCOL.md missing: %v", err)
	}
	for _, file := range []string{"README.md", "ARCHITECTURE.md"} {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(body), "docs/PROTOCOL.md") {
			t.Errorf("%s does not link docs/PROTOCOL.md", file)
		}
	}
}
