// Benchmarks reproducing every figure of the paper's experimental
// evaluation (Section 6). Each benchmark family regenerates one figure's
// series; cmd/fdbbench prints them as tables. EXPERIMENTS.md records the
// measured shapes against the paper's.
//
// The default scale factor is 4 (override with FDB_BENCH_SCALE); Figure 4
// sweeps scales 1,2,4 (extend with FDB_BENCH_SCALE_MAX). Flat
// materialisations grow as 256·s⁴ tuples — keep scales modest on small
// machines.
package fdb_test

import (
	"os"
	"strconv"
	"sync"
	"testing"

	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/fops"
	"github.com/factordb/fdb/internal/frep"
	"github.com/factordb/fdb/internal/ftree"
	"github.com/factordb/fdb/internal/plan"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/rdb"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/workload"
)

func envInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func benchScale() int    { return envInt("FDB_BENCH_SCALE", 4) }
func benchScaleMax() int { return envInt("FDB_BENCH_SCALE_MAX", 4) }
func sweepScales() []int {
	max := benchScaleMax()
	var out []int
	for s := 1; s <= max; s *= 2 {
		out = append(out, s)
	}
	return out
}

// fixture caches the per-scale dataset and materialised views.
type fixture struct {
	ds     *workload.Dataset
	view   *fops.FRel // factorised R1 over the paper's f-tree T
	cat    []ftree.CatalogRelation
	flatMu sync.Mutex
	flatR1 *relation.Relation
	flatR2 *relation.Relation
	r3     *relation.Relation
	fr3    *fops.FRel
}

var (
	fixtures   = map[int]*fixture{}
	fixturesMu sync.Mutex
)

func getFixture(b *testing.B, scale int) *fixture {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[scale]; ok {
		return f
	}
	ds := workload.Generate(workload.Config{Scale: scale})
	view, err := ds.FactorisedR1()
	if err != nil {
		b.Fatal(err)
	}
	fr3, err := ds.FactorisedR3()
	if err != nil {
		b.Fatal(err)
	}
	f := &fixture{ds: ds, view: view, cat: ds.Catalog(), fr3: fr3}
	fixtures[scale] = f
	return f
}

// flat materialises the flat views lazily (they are 256·s⁴ tuples).
func (f *fixture) flat(b *testing.B) (*relation.Relation, *relation.Relation, *relation.Relation) {
	b.Helper()
	f.flatMu.Lock()
	defer f.flatMu.Unlock()
	if f.flatR1 == nil {
		r1, err := f.ds.FlatR1()
		if err != nil {
			b.Fatal(err)
		}
		r2, err := f.ds.FlatR2()
		if err != nil {
			b.Fatal(err)
		}
		r3, err := f.ds.R3()
		if err != nil {
			b.Fatal(err)
		}
		f.flatR1, f.flatR2, f.r3 = r1, r2, r3
	}
	return f.flatR1, f.flatR2, f.r3
}

func (f *fixture) rdbDB(b *testing.B) rdb.DB {
	r1, r2, r3 := f.flat(b)
	return rdb.DB{"R1": r1, "R2": r2, "R3": r3}
}

// runFDBView runs a query on the factorised view and enumerates the full
// flat output (the paper's "FDB" mode).
func runFDBView(b *testing.B, f *fixture, q *query.Query) {
	b.Helper()
	e := engine.New()
	res, err := e.RunOnView(q, f.view, f.cat)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := res.Count(); err != nil {
		b.Fatal(err)
	}
}

// runFDBViewFO runs a query on the factorised view producing factorised
// output only ("FDB f/o": no enumeration).
func runFDBViewFO(b *testing.B, f *fixture, q *query.Query) {
	b.Helper()
	e := engine.New()
	res, err := e.RunOnView(q, f.view, f.cat)
	if err != nil {
		b.Fatal(err)
	}
	_ = res.Singletons()
}

func runRDB(b *testing.B, db rdb.DB, q *query.Query, mode rdb.GroupMode, eager bool) {
	b.Helper()
	e := &rdb.Engine{Grouping: mode, Eager: eager}
	out, err := e.Run(q, db)
	if err != nil {
		b.Fatal(err)
	}
	_ = out.Cardinality()
}

// --- E0: the in-text size table (join ~s⁴ vs factorisation ~s³) -------

func BenchmarkSizeGrowth(b *testing.B) {
	for _, s := range sweepScales() {
		b.Run("scale="+strconv.Itoa(s), func(b *testing.B) {
			f := getFixture(b, s)
			var rep *workload.SizeReport
			for i := 0; i < b.N; i++ {
				var err error
				rep, err = f.ds.Sizes()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.JoinTuples), "join-tuples")
			b.ReportMetric(float64(rep.FactSingletons), "fact-singletons")
			b.ReportMetric(float64(rep.JoinTuples)/float64(rep.FactSingletons), "gap")
		})
	}
}

// --- Figure 4: Q2 and Q3 on the factorised view vs the baselines, by
// scale --------------------------------------------------------------

func benchFig4(b *testing.B, mk func() *query.Query) {
	for _, s := range sweepScales() {
		f := getFixture(b, s)
		b.Run("FDB/scale="+strconv.Itoa(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runFDBView(b, f, mk())
			}
		})
		db := f.rdbDB(b)
		b.Run("RDBsort/scale="+strconv.Itoa(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runRDB(b, db, mk(), rdb.GroupSort, false)
			}
		})
		b.Run("RDBhash/scale="+strconv.Itoa(s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runRDB(b, db, mk(), rdb.GroupHash, false)
			}
		})
		// Release the flat materialisations of non-default scales so
		// resident 256·s⁴-tuple views do not distort later timings via
		// GC pressure.
		if s != benchScale() {
			f.flatMu.Lock()
			f.flatR1, f.flatR2, f.r3 = nil, nil, nil
			f.flatMu.Unlock()
		}
	}
}

func BenchmarkFig4_Q2(b *testing.B) { benchFig4(b, workload.Q2) }
func BenchmarkFig4_Q3(b *testing.B) { benchFig4(b, workload.Q3) }

// --- Figure 5: AGG queries Q1–Q5 on the materialised (factorised) view
// ---------------------------------------------------------------------

func BenchmarkFig5(b *testing.B) {
	f := getFixture(b, benchScale())
	db := f.rdbDB(b)
	for i := 1; i <= 5; i++ {
		q := func() *query.Query {
			qq, err := workload.AggQuery(i)
			if err != nil {
				b.Fatal(err)
			}
			return qq
		}
		name := "Q" + strconv.Itoa(i)
		b.Run(name+"/FDBfo", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runFDBViewFO(b, f, q())
			}
		})
		b.Run(name+"/FDB", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runFDBView(b, f, q())
			}
		})
		b.Run(name+"/RDBsort", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runRDB(b, db, q(), rdb.GroupSort, false)
			}
		})
		b.Run(name+"/RDBhash", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runRDB(b, db, q(), rdb.GroupHash, false)
			}
		})
	}
}

// --- Figure 6: AGG queries on flat input (no materialised view), with
// the engines' own plans and manually optimised (eager) plans ----------

func BenchmarkFig6(b *testing.B) {
	f := getFixture(b, benchScale())
	baseDB := rdb.DB(f.ds.DB())
	engDB := engine.DB(f.ds.DB())
	for i := 1; i <= 5; i++ {
		q := func() *query.Query {
			qq, err := workload.FlatAggQuery(i)
			if err != nil {
				b.Fatal(err)
			}
			return qq
		}
		name := "Q" + strconv.Itoa(i)
		b.Run(name+"/FDB", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				res, err := engine.New().Run(q(), engDB)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := res.Count(); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/RDBlazy", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runRDB(b, baseDB, q(), rdb.GroupSort, false)
			}
		})
		b.Run(name+"/RDBman", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runRDB(b, baseDB, q(), rdb.GroupSort, true)
			}
		})
	}
}

// --- Figure 7: AGG+ORD queries Q6–Q9 on the factorised view -----------

func BenchmarkFig7(b *testing.B) {
	f := getFixture(b, benchScale())
	db := f.rdbDB(b)
	queries := map[string]func() *query.Query{
		"Q6": workload.Q6, "Q7": workload.Q7, "Q8": workload.Q8, "Q9": workload.Q9,
	}
	for _, name := range []string{"Q6", "Q7", "Q8", "Q9"} {
		mk := queries[name]
		b.Run(name+"/FDB", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runFDBView(b, f, mk())
			}
		})
		b.Run(name+"/RDBsort", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runRDB(b, db, mk(), rdb.GroupSort, false)
			}
		})
		b.Run(name+"/RDBhash", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runRDB(b, db, mk(), rdb.GroupHash, false)
			}
		})
	}
}

// --- Figure 8: ORD queries Q10–Q13 with and without LIMIT 10 ----------

func BenchmarkFig8(b *testing.B) {
	f := getFixture(b, benchScale())
	_, flatR2, _ := f.flat(b)
	db := f.rdbDB(b)
	cases := []struct {
		name string
		mk   func(limit int) *query.Query
		view *fops.FRel
	}{
		{"Q10", workload.Q10, f.view},
		{"Q11", workload.Q11, f.view},
		{"Q12", workload.Q12, f.view},
		{"Q13", workload.Q13, f.fr3},
	}
	for _, tc := range cases {
		for _, limit := range []int{0, 10} {
			suffix := ""
			if limit > 0 {
				suffix = "lim"
			}
			mk := tc.mk
			view := tc.view
			lim := limit
			b.Run(tc.name+suffix+"/FDB", func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					e := engine.New()
					res, err := e.RunOnView(mk(lim), view, f.cat)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := res.Count(); err != nil {
						b.Fatal(err)
					}
				}
			})
			if tc.name == "Q10" {
				// The baselines need no sort for Q10 — they scan the
				// already-sorted R2 (Experiment 4). Touch each tuple so
				// the scan is not optimised away.
				b.Run(tc.name+suffix+"/RDB", func(b *testing.B) {
					var sink int64
					for n := 0; n < b.N; n++ {
						count := 0
						for _, t := range flatR2.Tuples {
							sink += t[0].Int()
							count++
							if lim > 0 && count >= lim {
								break
							}
						}
					}
					_ = sink
				})
				continue
			}
			b.Run(tc.name+suffix+"/RDB", func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					runRDB(b, db, mk(lim), rdb.GroupSort, false)
				}
			})
		}
	}
}

// --- A1: ablation — partial (eager) aggregation on/off inside FDB -----

func BenchmarkAblationPartialAgg(b *testing.B) {
	f := getFixture(b, benchScale())
	for _, name := range []string{"Q2", "Q4", "Q5"} {
		mk := map[string]func() *query.Query{
			"Q2": workload.Q2, "Q4": workload.Q4, "Q5": workload.Q5,
		}[name]
		for _, eager := range []bool{true, false} {
			mode := "eager"
			if !eager {
				mode = "lazy"
			}
			e := &engine.Engine{PartialAgg: eager}
			b.Run(name+"/"+mode, func(b *testing.B) {
				for n := 0; n < b.N; n++ {
					res, err := e.RunOnView(mk(), f.view, f.cat)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := res.Count(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- A2: ablation — partial restructuring (swap) vs re-factorising the
// view from scratch for a new order ------------------------------------

func BenchmarkAblationRestructure(b *testing.B) {
	f := getFixture(b, benchScale())
	_, flatR2, _ := f.flat(b)
	b.Run("Q12/swap", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			runFDBView(b, f, workload.Q12(0))
		}
	})
	b.Run("Q12/rebuild", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			// Factorise R2 from scratch over a linear path in the target
			// order, then enumerate.
			t := ftree.New()
			t.NewRelationPath("date", "package", "item", "customer", "price")
			roots, err := frep.BuildUnchecked(flatR2, t)
			if err != nil {
				b.Fatal(err)
			}
			en, err := frep.NewEnumerator(t, roots, nil)
			if err != nil {
				b.Fatal(err)
			}
			count := 0
			for en.Next() {
				count++
			}
		}
	})
}

// --- A3: ablation — greedy vs exhaustive (Dijkstra) optimiser ---------

func BenchmarkAblationOptimiser(b *testing.B) {
	f := getFixture(b, benchScale())
	for _, tc := range []struct {
		name string
		mk   func() *query.Query
	}{
		{"Q2", workload.Q2}, {"Q3", workload.Q3},
	} {
		tree := f.view.Tree
		b.Run(tc.name+"/greedy", func(b *testing.B) {
			var cost float64
			for n := 0; n < b.N; n++ {
				p := &plan.Planner{Catalog: f.cat, PartialAgg: true}
				pl, err := p.Plan(tree, tc.mk())
				if err != nil {
					b.Fatal(err)
				}
				cost = pl.Cost
			}
			b.ReportMetric(cost, "plan-cost")
		})
		b.Run(tc.name+"/exhaustive", func(b *testing.B) {
			var cost float64
			for n := 0; n < b.N; n++ {
				p := &plan.Planner{Catalog: f.cat, PartialAgg: true, Exhaustive: true, MaxStates: 30000}
				pl, err := p.Plan(tree, tc.mk())
				if err != nil {
					b.Fatal(err)
				}
				cost = pl.Cost
			}
			b.ReportMetric(cost, "plan-cost")
		})
	}
}

// --- E6 (Experiment 5): RDB's two grouping modes stand in for SQLite
// (sort-based) and PostgreSQL (hash-based) ------------------------------

func BenchmarkExp5_GroupingModes(b *testing.B) {
	f := getFixture(b, benchScale())
	db := f.rdbDB(b)
	for _, tc := range []struct {
		name string
		mk   func() *query.Query
	}{
		{"Q2", workload.Q2}, {"Q3", workload.Q3},
	} {
		b.Run(tc.name+"/sort", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runRDB(b, db, tc.mk(), rdb.GroupSort, false)
			}
		})
		b.Run(tc.name+"/hash", func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				runRDB(b, db, tc.mk(), rdb.GroupHash, false)
			}
		})
	}
}
