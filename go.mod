module github.com/factordb/fdb

go 1.21
