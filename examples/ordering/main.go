// Ordering demonstrates Section 4 of the paper: constant-delay
// enumeration of a factorised view in several orders. One f-tree supports
// many orders at once (Q10/Q11 need no work at all); an unsupported order
// needs only a partial restructuring — one swap — rather than a full
// re-sort (Q12, Q13); and LIMIT k returns the first tuples of a huge
// result almost for free.
//
// Run with: go run ./examples/ordering [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/query"
	"github.com/factordb/fdb/internal/workload"
)

func main() {
	log.SetFlags(0)
	scale := flag.Int("scale", 2, "workload scale factor")
	flag.Parse()

	ds := workload.Generate(workload.Config{Scale: *scale})
	view, err := ds.FactorisedR1()
	check(err)
	fr3, err := ds.FactorisedR3()
	check(err)
	cat := ds.Catalog()
	e := engine.New()

	fmt.Println("materialised view R2 is factorised over:")
	fmt.Println(view.Tree)

	show := func(name string, q *query.Query, viewSel int) {
		v := view
		if viewSel == 3 {
			v = fr3
		}
		start := time.Now()
		res, err := e.RunOnView(q, v, cat)
		check(err)
		n, err := res.Count()
		check(err)
		full := time.Since(start)

		// And the first-10 variant.
		q10 := *q
		q10.Limit = 10
		start = time.Now()
		res, err = e.RunOnView(&q10, v, cat)
		check(err)
		_, err = res.Count()
		check(err)
		lim := time.Since(start)
		fmt.Printf("%-4s %-40s %8d rows   full %-12v first-10 %v\n", name, q.String(), n, full, lim)
	}

	fmt.Println("\nenumeration in different orders (no restructuring for Q10/Q11, one swap for Q12/Q13):")
	show("Q10", workload.Q10(0), 1)
	show("Q11", workload.Q11(0), 1)
	show("Q12", workload.Q12(0), 1)
	show("Q13", workload.Q13(0), 3)

	// Top-k by an aggregate: order by revenue descending (Q7 flavour).
	top := workload.Q7()
	top.OrderBy[0].Desc = true
	top.Limit = 5
	res, err := e.RunOnView(top, view, cat)
	check(err)
	rel, err := res.Relation()
	check(err)
	fmt.Println("\ntop 5 customers by revenue:")
	fmt.Print(rel)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
