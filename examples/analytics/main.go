// Analytics runs the paper's AGG workload (Figure 3, Q1–Q5) on a
// generated retail dataset: a factorised materialised view is queried
// with grouped aggregates and the same answers are cross-checked against
// the relational baseline, with timings that show the effect of the
// succinctness gap.
//
// Run with: go run ./examples/analytics [-scale N]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/factordb/fdb/internal/engine"
	"github.com/factordb/fdb/internal/rdb"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/workload"
)

func main() {
	log.SetFlags(0)
	scale := flag.Int("scale", 2, "workload scale factor")
	flag.Parse()

	ds := workload.Generate(workload.Config{Scale: *scale})
	rep, err := ds.Sizes()
	check(err)
	fmt.Printf("scale %d: flat join %d tuples, factorisation %d singletons (gap %.1f×)\n\n",
		rep.Scale, rep.JoinTuples, rep.FactSingletons,
		float64(rep.JoinTuples)/float64(rep.FactSingletons))

	view, err := ds.FactorisedR1()
	check(err)
	flatR1, err := ds.FlatR1()
	check(err)
	cat := ds.Catalog()
	e := engine.New()
	base := rdb.DB{"R1": flatR1}

	for i := 1; i <= 5; i++ {
		q, err := workload.AggQuery(i)
		check(err)
		fmt.Printf("Q%d = %s\n", i, q)

		start := time.Now()
		res, err := e.RunOnView(q, view, cat)
		check(err)
		got, err := res.Relation()
		check(err)
		fdbTime := time.Since(start)

		start = time.Now()
		want, err := rdb.New().Run(q, base)
		check(err)
		rdbTime := time.Since(start)

		status := "MISMATCH"
		if relation.EqualAsSets(got, want) {
			status = "OK"
		}
		fmt.Printf("  FDB %v on %d singletons vs RDB %v on %d tuples — %d rows, check %s\n\n",
			fdbTime, view.Singletons(), rdbTime, flatR1.Cardinality(),
			got.Cardinality(), status)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
