// Sqlshell demonstrates the SQL front-end: a batch of statements over an
// in-memory database, each evaluated by the factorised engine and
// cross-checked against the relational baseline.
//
// Run with: go run ./examples/sqlshell
package main

import (
	"fmt"
	"log"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/rdb"
	"github.com/factordb/fdb/internal/relation"
	"github.com/factordb/fdb/internal/workload"
)

func main() {
	log.SetFlags(0)
	ds := workload.Generate(workload.Config{Scale: 1})
	db := fdb.Database(ds.DB())
	e := fdb.NewEngine()

	statements := []string{
		`SELECT customer, SUM(price) AS revenue
		   FROM Orders, Packages, Items
		  WHERE package = package2 AND item = item2
		  GROUP BY customer ORDER BY revenue DESC LIMIT 5`,
		`SELECT package, COUNT(*) AS n, MIN(price) AS cheapest, AVG(price) AS mean
		   FROM Orders, Packages, Items
		  WHERE package = package2 AND item = item2
		  GROUP BY package HAVING n > 10 ORDER BY package LIMIT 5`,
		`SELECT date, MAX(price) AS dearest
		   FROM Orders, Packages, Items
		  WHERE package = package2 AND item = item2 AND price >= 5
		  GROUP BY date ORDER BY dearest DESC, date LIMIT 5`,
		`SELECT customer, date FROM Orders ORDER BY customer, date DESC LIMIT 8`,
	}

	for _, stmt := range statements {
		fmt.Printf("sql> %s\n", stmt)
		q, err := fdb.ParseSQL(stmt)
		if err != nil {
			log.Fatal(err)
		}
		res, err := e.Run(q, db)
		if err != nil {
			log.Fatal(err)
		}
		rel, err := res.Relation()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rel)

		// Cross-check (without LIMIT: ties make prefixes ambiguous).
		qq := *q
		qq.Limit = 0
		full, err := e.Run(&qq, db)
		if err != nil {
			log.Fatal(err)
		}
		got, err := full.Relation()
		if err != nil {
			log.Fatal(err)
		}
		want, err := rdb.New().Run(&qq, rdb.DB(db))
		if err != nil {
			log.Fatal(err)
		}
		if relation.EqualAsSets(got, want) {
			fmt.Println("check: OK (matches relational baseline)")
		} else {
			fmt.Printf("check: MISMATCH (FDB %d rows, RDB %d rows)\n",
				got.Cardinality(), want.Cardinality())
		}
		fmt.Println()
	}
}
