// Quickstart walks through the paper's running example (Section 1): the
// pizzeria database, its factorisation over the f-tree T1, and the
// aggregate queries S (price of each ordered pizza) and P (revenue per
// customer), evaluated with partial aggregation and restructuring.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/frep"
)

func main() {
	log.SetFlags(0)

	orders, err := fdb.ReadCSV("Orders", strings.NewReader(
		`customer,date,pizza
Mario,Monday,Capricciosa
Mario,Tuesday,Margherita
Pietro,Friday,Hawaii
Lucia,Friday,Hawaii
Mario,Friday,Capricciosa
`))
	check(err)
	pizzas, err := fdb.ReadCSV("Pizzas", strings.NewReader(
		`pizza2,item
Margherita,base
Capricciosa,base
Capricciosa,ham
Capricciosa,mushrooms
Hawaii,base
Hawaii,ham
Hawaii,pineapple
`))
	check(err)
	items, err := fdb.ReadCSV("Items", strings.NewReader(
		`item2,price
base,6
ham,1
mushrooms,1
pineapple,2
`))
	check(err)
	db := fdb.Database{"Orders": orders, "Pizzas": pizzas, "Items": items}
	e := fdb.NewEngine()

	// Materialise R = Orders ⋈ Pizzas ⋈ Items as a factorised view.
	join, err := fdb.ParseSQL(`SELECT * FROM Orders, Pizzas, Items
		WHERE pizza = pizza2 AND item = item2`)
	check(err)
	view, err := fdb.MaterialiseView(e, join, db)
	check(err)

	fmt.Println("f-tree chosen by the optimiser for the factorised view:")
	fmt.Println(view.Tree)
	fmt.Printf("factorisation (%d singletons for %d tuples):\n  %s\n\n",
		view.Singletons(), mustCount(view), frep.Format(view.Tree, view.Roots))

	// Query S: the price of each ordered pizza.
	qs, err := fdb.ParseSQL(`SELECT customer, date, pizza, SUM(price) AS total
		FROM R GROUP BY customer, date, pizza ORDER BY pizza, date`)
	check(err)
	resS, err := e.RunOnView(qs, view, nil)
	check(err)
	relS, err := resS.Relation()
	check(err)
	fmt.Println("Query S = ϖ_{customer,date,pizza; sum(price)}(R):")
	fmt.Print(relS)

	// Query P: revenue per customer (Example 1's partial-aggregation
	// pipeline: γ_sum(item,price), restructure customer up, γ_count(date),
	// final γ).
	qp, err := fdb.ParseSQL(`SELECT customer, SUM(price) AS revenue
		FROM R GROUP BY customer ORDER BY customer`)
	check(err)
	resP, err := e.RunOnView(qp, view, nil)
	check(err)
	fmt.Printf("\nQuery P = ϖ_{customer; sum(price)}(R), f-plan: %s\n", resP.Plan)
	relP, err := resP.Relation()
	check(err)
	fmt.Print(relP)
	fmt.Println("\n(the paper's result: Lucia 9, Mario 22, Pietro 9)")

	// Ordering: Example 2 — (customer, pizza, item) needs customer pushed
	// up, but the pizza/item/price branch is reused as-is.
	qo, err := fdb.ParseSQL(`SELECT * FROM R ORDER BY customer, pizza, item LIMIT 5`)
	check(err)
	resO, err := e.RunOnView(qo, view, nil)
	check(err)
	fmt.Println("\nfirst 5 tuples ordered by (customer, pizza, item):")
	err = resO.ForEach(func(t fdb.Tuple) bool {
		fmt.Printf("  %v\n", t)
		return true
	})
	check(err)
}

func mustCount(view *fdb.Factorisation) int {
	flat, err := view.Flatten()
	if err != nil {
		log.Fatal(err)
	}
	return flat.Cardinality()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
