package driver_test

// Tests for the driver's write path: ExecContext over a mutable
// catalogue, prepared DML statements, and RowsAffected plumbing.

import (
	"database/sql"
	"path/filepath"
	"strings"
	"testing"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/driver"
)

func openMutableDB(t *testing.T) (*sql.DB, *fdb.MutableCatalog) {
	t.Helper()
	m, err := fdb.CreateMutable(filepath.Join(t.TempDir(), "cat"), "pizzeria", pizzeria(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	db := sql.OpenDB(driver.NewMutableConnector(m))
	t.Cleanup(func() { db.Close() })
	return db, m
}

func TestExecInsertDeleteUpsert(t *testing.T) {
	db, _ := openMutableDB(t)

	res, err := db.Exec(`INSERT INTO Orders VALUES ('Anna', 'Sunday', 'Margherita'), ('Anna', 'Monday', 'Hawaii')`)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := res.RowsAffected(); err != nil || n != 2 {
		t.Fatalf("RowsAffected = %d, %v; want 2", n, err)
	}

	// The write is visible to queries over the same handle.
	var count int64
	if err := db.QueryRow(`SELECT COUNT(*) AS n FROM Orders`).Scan(&count); err != nil {
		t.Fatal(err)
	}
	if count != 7 {
		t.Fatalf("COUNT(*) after insert = %d, want 7", count)
	}

	res, err = db.Exec(`DELETE FROM Orders WHERE customer = 'Anna'`)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 2 {
		t.Fatalf("delete RowsAffected = %d, want 2", n)
	}

	res, err = db.Exec(`UPSERT INTO Items VALUES ('ham', 5)`)
	if err != nil {
		t.Fatal(err)
	}
	// One row deleted (old price) plus one inserted.
	if n, _ := res.RowsAffected(); n != 2 {
		t.Fatalf("upsert RowsAffected = %d, want 2", n)
	}
	var price int64
	if err := db.QueryRow(`SELECT price FROM Items WHERE item2 = 'ham'`).Scan(&price); err != nil {
		t.Fatal(err)
	}
	if price != 5 {
		t.Fatalf("price after upsert = %d, want 5", price)
	}
}

func TestPreparedDMLStatement(t *testing.T) {
	db, m := openMutableDB(t)
	stmt, err := db.Prepare(`INSERT INTO Orders VALUES ('Zoe', 'Monday', 'Hawaii')`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	res, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 1 {
		t.Fatalf("RowsAffected = %d, want 1", n)
	}
	// Re-executing the same insert is a set-semantics no-op.
	res, err = stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 0 {
		t.Fatalf("repeat RowsAffected = %d, want 0", n)
	}
	if m.Generation() != 1 {
		t.Fatalf("generation = %d, want 1 (no-op must not bump)", m.Generation())
	}

	// A DML statement cannot be queried, and vice versa.
	if _, err := stmt.Query(); err == nil {
		t.Fatal("Query on a DML statement succeeded")
	}
	qstmt, err := db.Prepare(`SELECT * FROM Items`)
	if err != nil {
		t.Fatal(err)
	}
	defer qstmt.Close()
	if _, err := qstmt.Exec(); err == nil {
		t.Fatal("Exec on a SELECT statement succeeded")
	}
}

func TestExecArgsRejected(t *testing.T) {
	db, _ := openMutableDB(t)
	if _, err := db.Exec(`DELETE FROM Orders WHERE customer = 'Anna'`, 1); err == nil {
		t.Fatal("Exec with bind args succeeded")
	}
}

func TestExecOnReadOnlyCatalogue(t *testing.T) {
	db := openDB(t)
	_, err := db.Exec(`INSERT INTO Orders VALUES ('Anna', 'Sunday', 'Margherita')`)
	if err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("err = %v, want read-only rejection", err)
	}
	if _, err := db.Prepare(`DELETE FROM Orders`); err == nil {
		t.Fatal("Prepare of DML on a read-only catalogue succeeded")
	}
}

func TestMutableQueryAggregateAfterWrites(t *testing.T) {
	db, _ := openMutableDB(t)
	if _, err := db.Exec(`DELETE FROM Orders WHERE customer = 'Pietro'`); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`SELECT customer, SUM(price) AS revenue
		FROM Orders, Pizzas, Items
		WHERE pizza = pizza2 AND item = item2
		GROUP BY customer ORDER BY revenue DESC, customer`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var got []string
	for rows.Next() {
		var customer string
		var revenue int64
		if err := rows.Scan(&customer, &revenue); err != nil {
			t.Fatal(err)
		}
		got = append(got, customer)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if want := "Mario Lucia"; strings.Join(got, " ") != want {
		t.Fatalf("customers = %q, want %q", strings.Join(got, " "), want)
	}
}
