package driver_test

import (
	"context"
	"database/sql"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/driver"
)

// pizzeria builds the paper's running example catalogue.
func pizzeria(t *testing.T) fdb.Database {
	t.Helper()
	read := func(name, csv string) *fdb.Relation {
		rel, err := fdb.ReadCSV(name, strings.NewReader(csv))
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	return fdb.Database{
		"Orders": read("Orders",
			"customer,date,pizza\n"+
				"Mario,Monday,Capricciosa\n"+
				"Mario,Tuesday,Margherita\n"+
				"Pietro,Friday,Hawaii\n"+
				"Lucia,Friday,Hawaii\n"+
				"Mario,Friday,Capricciosa\n"),
		"Pizzas": read("Pizzas",
			"pizza2,item\n"+
				"Margherita,base\nCapricciosa,base\nCapricciosa,ham\nCapricciosa,mushrooms\n"+
				"Hawaii,base\nHawaii,ham\nHawaii,pineapple\n"),
		"Items": read("Items",
			"item2,price\nbase,6\nham,1\nmushrooms,1\npineapple,2\n"),
	}
}

func openDB(t *testing.T) *sql.DB {
	t.Helper()
	db := sql.OpenDB(driver.NewConnector(pizzeria(t)))
	t.Cleanup(func() { db.Close() })
	return db
}

func TestQueryAggregate(t *testing.T) {
	db := openDB(t)
	rows, err := db.Query(`SELECT customer, SUM(price) AS revenue
		FROM Orders, Pizzas, Items
		WHERE pizza = pizza2 AND item = item2
		GROUP BY customer ORDER BY revenue DESC, customer`)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"customer", "revenue"}; fmt.Sprint(cols) != fmt.Sprint(want) {
		t.Fatalf("columns = %v, want %v", cols, want)
	}
	var got []string
	for rows.Next() {
		var customer string
		var revenue int64
		if err := rows.Scan(&customer, &revenue); err != nil {
			t.Fatal(err)
		}
		got = append(got, fmt.Sprintf("%s=%d", customer, revenue))
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	// Mario: two Capricciosas (8 each) + one Margherita (6); Lucia and
	// Pietro one Hawaii each (6+1+2).
	want := "Mario=22 Lucia=9 Pietro=9"
	if strings.Join(got, " ") != want {
		t.Fatalf("rows = %q, want %q", strings.Join(got, " "), want)
	}
}

func TestRegisteredCatalogue(t *testing.T) {
	driver.Register("pizzeria_test", pizzeria(t))
	defer driver.Unregister("pizzeria_test")
	db, err := sql.Open("fdb", "pizzeria_test")
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	var n int64
	if err := db.QueryRow(`SELECT COUNT(*) AS n FROM Orders`).Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("COUNT(*) = %d, want 5", n)
	}
}

func TestOpenUnknownCatalogue(t *testing.T) {
	db, err := sql.Open("fdb", "no-such-catalogue")
	if err == nil {
		// database/sql defers connector errors to first use.
		err = db.Ping()
		db.Close()
	}
	if err == nil || !strings.Contains(err.Error(), "no catalogue registered") {
		t.Fatalf("err = %v, want 'no catalogue registered'", err)
	}
}

func TestOffsetPagination(t *testing.T) {
	db := openDB(t)
	// Page through all item prices, two per page, and reassemble.
	var all []string
	rows, err := db.Query(`SELECT item2, price FROM Items ORDER BY price DESC, item2`)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		var item string
		var price int64
		if err := rows.Scan(&item, &price); err != nil {
			t.Fatal(err)
		}
		all = append(all, fmt.Sprintf("%s=%d", item, price))
	}
	rows.Close()
	var paged []string
	for off := 0; ; off += 2 {
		stmt := fmt.Sprintf(`SELECT item2, price FROM Items ORDER BY price DESC, item2 LIMIT 2 OFFSET %d`, off)
		prows, err := db.Query(stmt)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for prows.Next() {
			var item string
			var price int64
			if err := prows.Scan(&item, &price); err != nil {
				t.Fatal(err)
			}
			paged = append(paged, fmt.Sprintf("%s=%d", item, price))
			n++
		}
		prows.Close()
		if n == 0 {
			break
		}
	}
	if strings.Join(paged, " ") != strings.Join(all, " ") {
		t.Fatalf("paged = %v, all = %v", paged, all)
	}
}

func TestPreparedStatement(t *testing.T) {
	db := openDB(t)
	stmt, err := db.Prepare(`SELECT pizza, COUNT(*) AS n FROM Orders GROUP BY pizza ORDER BY n DESC, pizza`)
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for rep := 0; rep < 3; rep++ {
		rows, err := stmt.Query()
		if err != nil {
			t.Fatal(err)
		}
		var got []string
		for rows.Next() {
			var pizza string
			var n int64
			if err := rows.Scan(&pizza, &n); err != nil {
				t.Fatal(err)
			}
			got = append(got, fmt.Sprintf("%s=%d", pizza, n))
		}
		rows.Close()
		if want := "Capricciosa=2 Hawaii=2 Margherita=1"; strings.Join(got, " ") != want {
			t.Fatalf("rep %d: rows = %q, want %q", rep, strings.Join(got, " "), want)
		}
	}
	if _, err := db.Prepare(`SELECT nope FROM`); err == nil {
		t.Fatal("Prepare of a broken statement succeeded")
	}
}

func TestExecRejected(t *testing.T) {
	db := openDB(t)
	if _, err := db.Exec(`SELECT * FROM Items`); err == nil {
		t.Fatal("Exec succeeded on the read-only engine")
	}
	if _, err := db.Begin(); err == nil {
		t.Fatal("Begin succeeded on the read-only engine")
	}
}

func TestPlaceholdersRejected(t *testing.T) {
	db := openDB(t)
	_, err := db.Query(`SELECT * FROM Items WHERE price >= 1`, 1)
	if err == nil || !strings.Contains(err.Error(), "placeholder") {
		t.Fatalf("err = %v, want placeholder rejection", err)
	}
}

func TestQueryCancellation(t *testing.T) {
	db := openDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryContext(ctx, `SELECT * FROM Items`)
	if err == nil {
		t.Fatal("QueryContext with a cancelled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestConcurrentQueries(t *testing.T) {
	db := openDB(t)
	const workers = 8
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < 20; i++ {
				var n int64
				if err := db.QueryRow(`SELECT COUNT(*) AS n FROM Orders`).Scan(&n); err != nil {
					errc <- err
					return
				}
				if n != 5 {
					errc <- fmt.Errorf("COUNT(*) = %d, want 5", n)
					return
				}
			}
			errc <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
}
