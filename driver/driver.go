// Package driver provides a database/sql driver for the FDB factorised
// query engine, registered under the name "fdb". It serves an
// in-process catalogue: the data lives in this process's memory as
// fdb.Relations, and queries execute on the factorised representation
// and stream through the engine's constant-delay cursors — rows are
// produced one at a time off the factorisation, never buffered.
//
// There are three DSN/opening forms:
//
//	// 1. Register a named catalogue, then open by that name as the DSN.
//	driver.Register("shop", fdb.Database{"Orders": orders, ...})
//	db, err := sql.Open("fdb", "shop")
//
//	// 2. A "file:" DSN loads a catalogue snapshot from disk once per
//	// sql.Open — schema, tuples and prebuilt factorisations, no
//	// registration needed; the snapshot is released when db closes.
//	db, err := sql.Open("fdb", "file:/var/lib/fdb/shop.fdbcat")
//
//	// 3. Wrap a catalogue in a Connector (no global state at all).
//	db := sql.OpenDB(driver.NewConnector(fdb.Database{...}))
//
// The catalogue's relations must not be modified once queries run: the
// driver shares one factorised snapshot of each queried relation across
// all connections (the engine's ExecShared contract). Statements are
// the engine's SELECT subset — joins, filters, aggregates, GROUP BY,
// HAVING, ORDER BY, LIMIT and OFFSET; placeholder parameters are not
// supported. Registered catalogues are read-only: ExecContext and
// transactions return errors.
//
// To write, serve a mutable catalogue (fdb.OpenMutable) instead:
//
//	mut, _ := fdb.OpenMutable("/var/lib/fdb/shop")
//	driver.RegisterMutable("shop", mut)      // or driver.NewMutableConnector(mut)
//	db, _ := sql.Open("fdb", "shop")
//	res, _ := db.ExecContext(ctx, `INSERT INTO Orders VALUES (5, 'capri', 20)`)
//	n, _ := res.RowsAffected()
//
// ExecContext accepts INSERT INTO ... VALUES, DELETE FROM ... WHERE and
// UPSERT INTO ... VALUES; it returns once the statement's WAL record is
// group-committed, and RowsAffected reports the rows actually changed.
// Queries on the same handle always see the catalogue's latest published
// view — the engine detects stale shared snapshots by relation pointer
// identity and rebuilds them.
//
// Plans are cached per catalogue in an LRU keyed by the normalised
// statement text, so repeated statements skip parsing and optimisation
// — the same split that backs fdbserver. QueryContext honours its
// context throughout: cancelling stops planning, execution and row
// streaming promptly.
package driver

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/internal/server/cache"
	fdbsql "github.com/factordb/fdb/internal/sql"
)

func init() {
	sql.Register("fdb", Driver{})
}

// planCacheSize bounds the per-catalogue LRU of prepared plans.
const planCacheSize = 256

// registry holds the named catalogues that sql.Open("fdb", name)
// resolves against.
var registry sync.Map // name → *catalog

// Register makes a catalogue available to sql.Open("fdb", name),
// replacing any previous catalogue under the same name. The relations
// must not be modified after the first query against them.
func Register(name string, db fdb.Database) {
	registry.Store(name, newCatalog(db))
}

// RegisterMutable makes a writable mutable catalogue available to
// sql.Open("fdb", name): queries run against its current view and
// ExecContext applies DML durably. The caller keeps ownership of the
// catalogue (close it after the sql.DB).
func RegisterMutable(name string, mut *fdb.MutableCatalog) {
	registry.Store(name, newMutableCatalog(mut))
}

// Unregister removes a named catalogue. Open databases keep their
// catalogue; only future Opens are affected.
func Unregister(name string) { registry.Delete(name) }

// catalog is one served database: the relations (static, or a mutable
// catalogue's live view), a shared engine, and the plan cache keyed by
// normalised SQL.
type catalog struct {
	db    fdb.Database
	mut   *fdb.MutableCatalog
	eng   *fdb.Engine
	plans *cache.LRU
}

func newCatalog(db fdb.Database) *catalog {
	return &catalog{db: db, eng: fdb.NewEngine(), plans: cache.New(planCacheSize)}
}

func newMutableCatalog(mut *fdb.MutableCatalog) *catalog {
	return &catalog{mut: mut, eng: fdb.NewEngine(), plans: cache.New(planCacheSize)}
}

// data returns the relations to query: the static map, or the mutable
// catalogue's current view.
func (c *catalog) data() fdb.Database {
	if c.mut != nil {
		return c.mut.View()
	}
	return c.db
}

// prepared returns the cached plan for the statement, compiling it on a
// miss. Concurrent misses may both compile; the results are
// interchangeable and the last Put wins.
func (c *catalog) prepared(ctx context.Context, text string) (*fdb.PreparedQuery, error) {
	key := fdbsql.Normalize(text)
	if v, ok := c.plans.Get(key); ok {
		return v.(*fdb.PreparedQuery), nil
	}
	q, err := fdb.ParseSQL(text)
	if err != nil {
		return nil, err
	}
	p, err := c.eng.PrepareContext(ctx, q, c.data())
	if err != nil {
		return nil, err
	}
	c.plans.Put(key, p)
	return p, nil
}

// query executes one statement and wraps the streaming result.
func (c *catalog) query(ctx context.Context, text string) (*rows, error) {
	p, err := c.prepared(ctx, text)
	if err != nil {
		return nil, err
	}
	res, err := p.ExecSharedContext(ctx, c.data())
	if err != nil {
		return nil, err
	}
	rs, err := res.Rows(ctx)
	if err != nil {
		res.Close()
		return nil, err
	}
	return &rows{res: res, rs: rs}, nil
}

// exec applies one DML statement, returning the database/sql result
// once the write is durable.
func (c *catalog) exec(ctx context.Context, text string) (driver.Result, error) {
	if c.mut == nil {
		return nil, errors.New("fdb driver: Exec is not supported on a read-only catalogue; use Query (or RegisterMutable)")
	}
	stmt, err := fdb.ParseStatement(text)
	if err != nil {
		return nil, err
	}
	mut, ok := stmt.(*fdb.Mutation)
	if !ok {
		return nil, errors.New("fdb driver: Exec of a SELECT; use Query")
	}
	n, err := c.mut.Apply(ctx, mut)
	if err != nil {
		return nil, err
	}
	return driver.RowsAffected(n), nil
}

// Driver implements database/sql/driver.Driver and DriverContext over
// registered catalogues. The DSN is a catalogue name, or — with a
// "file:" prefix — the path of a catalogue snapshot written by
// fdb.SaveCatalogFile (or fdbserver's /snapshot endpoint):
//
//	db, err := sql.Open("fdb", "file:/var/lib/fdb/shop.fdbcat")
//
// A file DSN loads the snapshot once per sql.Open: schema, tuples and
// prebuilt factorisations come straight off the snapshot's slabs, so
// opening is contiguous reads, not CSV parsing and re-sorting. The
// loaded catalogue lives for the life of the sql.DB; closing the DB
// releases it.
type Driver struct{}

// filePrefix marks a DSN that names a catalogue snapshot on disk.
const filePrefix = "file:"

// Open implements driver.Driver.
func (d Driver) Open(dsn string) (driver.Conn, error) {
	cn, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return cn.Connect(context.Background())
}

// OpenConnector implements driver.DriverContext.
func (Driver) OpenConnector(dsn string) (driver.Connector, error) {
	if path, ok := strings.CutPrefix(dsn, filePrefix); ok {
		loaded, err := fdb.LoadCatalogFile(path, false)
		if err != nil {
			return nil, fmt.Errorf("fdb driver: %w", err)
		}
		return &connector{cat: newCatalog(loaded.DB), loaded: loaded}, nil
	}
	v, ok := registry.Load(dsn)
	if !ok {
		return nil, fmt.Errorf("fdb driver: no catalogue registered under %q (call driver.Register, or use a %q DSN)", dsn, filePrefix+"<path>")
	}
	return &connector{cat: v.(*catalog)}, nil
}

// NewConnector wraps an in-process catalogue as a driver.Connector for
// sql.OpenDB, bypassing the name registry. Each Connector has its own
// engine and plan cache.
func NewConnector(db fdb.Database) driver.Connector {
	return &connector{cat: newCatalog(db)}
}

// NewMutableConnector wraps a writable mutable catalogue as a
// driver.Connector for sql.OpenDB: queries see its current view and
// ExecContext applies DML durably. The caller keeps ownership of the
// catalogue (close it after the sql.DB).
func NewMutableConnector(mut *fdb.MutableCatalog) driver.Connector {
	return &connector{cat: newMutableCatalog(mut)}
}

type connector struct {
	cat *catalog
	// loaded is the snapshot behind a "file:" DSN, nil otherwise; the
	// connector owns it and sql.DB.Close releases it through Close.
	loaded *fdb.Catalog
}

// Connect implements driver.Connector. Connections are stateless
// handles onto the shared catalogue, so this never blocks.
func (c *connector) Connect(context.Context) (driver.Conn, error) {
	return &conn{cat: c.cat}, nil
}

// Driver implements driver.Connector.
func (c *connector) Driver() driver.Driver { return Driver{} }

// Close implements io.Closer: database/sql calls it from sql.DB.Close,
// releasing a snapshot loaded through a "file:" DSN.
func (c *connector) Close() error {
	if c.loaded == nil {
		return nil
	}
	return c.loaded.Close()
}

// conn is one database/sql connection: a stateless view of the
// catalogue (all state lives in the catalogue and in open result
// cursors).
type conn struct {
	cat *catalog
}

var (
	_ driver.QueryerContext     = (*conn)(nil)
	_ driver.ExecerContext      = (*conn)(nil)
	_ driver.ConnPrepareContext = (*conn)(nil)
)

// Prepare implements driver.Conn.
func (c *conn) Prepare(text string) (driver.Stmt, error) {
	return c.PrepareContext(context.Background(), text)
}

// PrepareContext compiles (or fetches from the plan cache) the
// statement's f-plan eagerly, so a prepared statement surfaces parse
// and planning errors at Prepare time and its executions skip both.
// DML statements (INSERT / DELETE / UPSERT) are parse-checked here and
// executed through Stmt.Exec.
func (c *conn) PrepareContext(ctx context.Context, text string) (driver.Stmt, error) {
	parsed, err := fdb.ParseStatement(text)
	if err != nil {
		return nil, err
	}
	if _, dml := parsed.(*fdb.Mutation); dml {
		if c.cat.mut == nil {
			return nil, errors.New("fdb driver: Exec is not supported on a read-only catalogue; use Query (or RegisterMutable)")
		}
		return &stmt{cat: c.cat, text: text, dml: true}, nil
	}
	if _, err := c.cat.prepared(ctx, text); err != nil {
		return nil, err
	}
	return &stmt{cat: c.cat, text: text}, nil
}

// Close implements driver.Conn (stateless; nothing to release).
func (c *conn) Close() error { return nil }

// Begin implements driver.Conn. Each DML statement commits on its own
// (through the WAL's group commit); multi-statement transactions are
// not supported.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, errors.New("fdb driver: transactions are not supported (each statement commits on its own)")
}

// QueryContext implements driver.QueryerContext: the fast path
// database/sql uses for un-prepared queries.
func (c *conn) QueryContext(ctx context.Context, text string, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, errors.New("fdb driver: placeholder parameters are not supported")
	}
	return c.cat.query(ctx, text)
}

// ExecContext implements driver.ExecerContext: DML against a mutable
// catalogue, acknowledged after the WAL commit.
func (c *conn) ExecContext(ctx context.Context, text string, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, errors.New("fdb driver: placeholder parameters are not supported")
	}
	return c.cat.exec(ctx, text)
}

// stmt is a prepared statement: a SELECT whose plan sits in the
// catalogue's cache, or a parse-checked DML statement.
type stmt struct {
	cat  *catalog
	text string
	dml  bool
}

var (
	_ driver.StmtQueryContext = (*stmt)(nil)
	_ driver.StmtExecContext  = (*stmt)(nil)
)

// Close implements driver.Stmt (the cached plan stays for other users).
func (s *stmt) Close() error { return nil }

// NumInput implements driver.Stmt: no placeholder support.
func (s *stmt) NumInput() int { return 0 }

// Exec implements driver.Stmt.
func (s *stmt) Exec([]driver.Value) (driver.Result, error) {
	if !s.dml {
		return nil, errors.New("fdb driver: Exec of a SELECT; use Query")
	}
	return s.cat.exec(context.Background(), s.text)
}

// ExecContext implements driver.StmtExecContext.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	if len(args) > 0 {
		return nil, errors.New("fdb driver: placeholder parameters are not supported")
	}
	if !s.dml {
		return nil, errors.New("fdb driver: Exec of a SELECT; use Query")
	}
	return s.cat.exec(ctx, s.text)
}

// Query implements driver.Stmt.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, errors.New("fdb driver: placeholder parameters are not supported")
	}
	if s.dml {
		return nil, errors.New("fdb driver: Query of a DML statement; use Exec")
	}
	return s.cat.query(context.Background(), s.text)
}

// QueryContext implements driver.StmtQueryContext.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	if len(args) > 0 {
		return nil, errors.New("fdb driver: placeholder parameters are not supported")
	}
	if s.dml {
		return nil, errors.New("fdb driver: Query of a DML statement; use Exec")
	}
	return s.cat.query(ctx, s.text)
}

// rows adapts the engine's streaming cursor to driver.Rows. It owns the
// underlying Result: Close recycles the query's pooled arena store.
type rows struct {
	res *fdb.Result
	rs  *fdb.Rows
}

// Columns implements driver.Rows.
func (r *rows) Columns() []string { return r.rs.Columns() }

// Close implements driver.Rows, releasing the cursor and recycling the
// result's pooled store. It is idempotent.
func (r *rows) Close() error {
	err := r.rs.Close()
	r.res.Close()
	if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// Next implements driver.Rows: one constant-delay enumerator step per
// row, converted to driver values.
func (r *rows) Next(dest []driver.Value) error {
	if !r.rs.Next() {
		if err := r.rs.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	t := r.rs.Tuple()
	for i, v := range t {
		switch gv := fdb.GoValue(v).(type) {
		case []any:
			// Composite aggregate vectors render as text; they only
			// surface when a query exposes a raw (sum, count) pair.
			dest[i] = v.String()
		default:
			dest[i] = gv
		}
	}
	return nil
}
