package driver_test

import (
	"database/sql"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/factordb/fdb"
)

// collect runs a query and returns all rows as [][]any.
func collect(t *testing.T, db *sql.DB, q string) [][]any {
	t.Helper()
	rows, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	var out [][]any
	for rows.Next() {
		vals := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			t.Fatal(err)
		}
		out = append(out, vals)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

const fileDSNQuery = `SELECT customer, SUM(price) AS revenue
	FROM Orders, Pizzas, Items
	WHERE pizza = pizza2 AND item = item2
	GROUP BY customer ORDER BY revenue DESC, customer`

func TestFileDSN(t *testing.T) {
	data := pizzeria(t)
	path := filepath.Join(t.TempDir(), "pizzeria.fdbcat")
	if err := fdb.SaveCatalogFile(path, "pizzeria", data); err != nil {
		t.Fatal(err)
	}

	live := openDB(t)
	want := collect(t, live, fileDSNQuery)

	loaded, err := sql.Open("fdb", "file:"+path)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, loaded, fileDSNQuery)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("file: DSN answers differently\nwant %v\ngot  %v", want, got)
	}
	// Closing the DB releases the loaded catalogue (connector Close).
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFileDSNErrors(t *testing.T) {
	// Missing file: sql.Open defers to the first use.
	db, err := sql.Open("fdb", "file:"+filepath.Join(t.TempDir(), "absent.fdbcat"))
	if err == nil {
		defer db.Close()
		if _, qerr := db.Query("SELECT customer FROM Orders"); qerr == nil {
			t.Fatal("query against a missing snapshot succeeded")
		}
	}

	// Corrupt file: must surface a load error, not a panic.
	path := filepath.Join(t.TempDir(), "garbage.fdbcat")
	if err := os.WriteFile(path, []byte("not a catalogue"), 0o600); err != nil {
		t.Fatal(err)
	}
	db2, err := sql.Open("fdb", "file:"+path)
	if err == nil {
		defer db2.Close()
		if _, qerr := db2.Query("SELECT customer FROM Orders"); qerr == nil {
			t.Fatal("query against a corrupt snapshot succeeded")
		}
	}
}
