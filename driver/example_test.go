package driver_test

import (
	"context"
	"database/sql"
	"fmt"
	"os"
	"strings"

	"github.com/factordb/fdb"
	"github.com/factordb/fdb/driver"
)

// Example serves an in-process catalogue through database/sql: the
// rows stream one at a time off the factorised representation, and
// LIMIT/OFFSET pages are skipped inside the enumerator rather than
// materialised.
func Example() {
	read := func(name, csv string) *fdb.Relation {
		rel, err := fdb.ReadCSV(name, strings.NewReader(csv))
		if err != nil {
			panic(err)
		}
		return rel
	}
	driver.Register("pizzeria", fdb.Database{
		"Orders": read("Orders",
			"customer,date,pizza\n"+
				"Mario,Monday,Capricciosa\n"+
				"Mario,Tuesday,Margherita\n"+
				"Pietro,Friday,Hawaii\n"+
				"Lucia,Friday,Hawaii\n"+
				"Mario,Friday,Capricciosa\n"),
		"Pizzas": read("Pizzas",
			"pizza2,item\n"+
				"Margherita,base\nCapricciosa,base\nCapricciosa,ham\nCapricciosa,mushrooms\n"+
				"Hawaii,base\nHawaii,ham\nHawaii,pineapple\n"),
		"Items": read("Items",
			"item2,price\nbase,6\nham,1\nmushrooms,1\npineapple,2\n"),
	})

	db, err := sql.Open("fdb", "pizzeria")
	if err != nil {
		panic(err)
	}
	defer db.Close()

	rows, err := db.Query(`SELECT customer, SUM(price) AS revenue
		FROM Orders, Pizzas, Items
		WHERE pizza = pizza2 AND item = item2
		GROUP BY customer
		ORDER BY revenue DESC, customer
		LIMIT 2 OFFSET 1`)
	if err != nil {
		panic(err)
	}
	defer rows.Close()
	for rows.Next() {
		var customer string
		var revenue int64
		if err := rows.Scan(&customer, &revenue); err != nil {
			panic(err)
		}
		fmt.Printf("%s: %d\n", customer, revenue)
	}
	if err := rows.Err(); err != nil {
		panic(err)
	}
	// Output:
	// Lucia: 9
	// Pietro: 9
}

// ExampleNewMutableConnector walks the mutable-catalogue lifecycle
// through database/sql: create a durable directory from seed data,
// write through ExecContext (acknowledged only after the WAL group
// commit), read your own writes, and close — after which reopening the
// directory with fdb.OpenMutable recovers the exact acknowledged state.
func ExampleNewMutableConnector() {
	dir, err := os.MkdirTemp("", "fdb-mutable")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	orders, err := fdb.ReadCSV("Orders", strings.NewReader(
		"customer,pizza\nMario,Capricciosa\n"))
	if err != nil {
		panic(err)
	}
	mut, err := fdb.CreateMutable(dir, "pizzeria", fdb.Database{"Orders": orders})
	if err != nil {
		panic(err)
	}
	defer mut.Close()

	db := sql.OpenDB(driver.NewMutableConnector(mut))
	defer db.Close()
	ctx := context.Background()

	res, err := db.ExecContext(ctx, `INSERT INTO Orders VALUES ('Lucia', 'Hawaii')`)
	if err != nil {
		panic(err)
	}
	n, _ := res.RowsAffected()
	fmt.Println("inserted:", n)

	// Relations are sets: repeating the insert changes nothing.
	res, _ = db.ExecContext(ctx, `INSERT INTO Orders VALUES ('Lucia', 'Hawaii')`)
	n, _ = res.RowsAffected()
	fmt.Println("repeat insert:", n)

	rows, err := db.QueryContext(ctx, `SELECT customer, pizza FROM Orders ORDER BY customer`)
	if err != nil {
		panic(err)
	}
	defer rows.Close()
	for rows.Next() {
		var customer, pizza string
		if err := rows.Scan(&customer, &pizza); err != nil {
			panic(err)
		}
		fmt.Printf("%s: %s\n", customer, pizza)
	}
	if err := rows.Err(); err != nil {
		panic(err)
	}
	// Output:
	// inserted: 1
	// repeat insert: 0
	// Lucia: Hawaii
	// Mario: Capricciosa
}
